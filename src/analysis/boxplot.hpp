/**
 * @file
 * Box-and-whisker summaries and ASCII rendering for the Figure 2 style
 * error distributions.
 */

#ifndef STACKSCOPE_ANALYSIS_BOXPLOT_HPP
#define STACKSCOPE_ANALYSIS_BOXPLOT_HPP

#include <string>
#include <vector>

#include "common/stats_math.hpp"

namespace stackscope::analysis {

/** One labelled box in a box-plot group. */
struct BoxPlotEntry
{
    std::string label;
    FiveNumberSummary summary;
    std::vector<double> samples;
};

/** Compute a labelled summary from raw samples. */
BoxPlotEntry makeBox(std::string label, std::vector<double> samples);

/**
 * Render a group of boxes as an ASCII chart (one row per box) over a
 * common value axis, plus a numeric table. Whiskers extend to the extreme
 * values, as in the paper's Figure 2.
 */
std::string renderBoxPlot(const std::vector<BoxPlotEntry> &boxes,
                          const std::string &title, unsigned width = 60);

}  // namespace stackscope::analysis

#endif  // STACKSCOPE_ANALYSIS_BOXPLOT_HPP
