#include "analysis/render.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace stackscope::analysis {

namespace {

constexpr double kRenderEps = 5e-4;

}  // namespace

std::string
renderCpiStack(const stacks::CpiStack &stack, const std::string &title)
{
    return renderCpiStacks({stack}, {title}, "");
}

std::string
renderCpiStacks(const std::vector<stacks::CpiStack> &stacks_in,
                const std::vector<std::string> &titles,
                const std::string &heading)
{
    std::ostringstream out;
    char buf[256];
    if (!heading.empty())
        out << heading << "\n";

    out << "  " << std::left;
    out.width(11);
    out << "component";
    for (const std::string &t : titles) {
        std::snprintf(buf, sizeof(buf), " %10s", t.c_str());
        out << buf;
    }
    out << "\n";

    for (std::size_t i = 0; i < stacks::kNumCpiComponents; ++i) {
        const auto c = static_cast<stacks::CpiComponent>(i);
        bool any = false;
        for (const auto &s : stacks_in)
            any = any || std::abs(s[c]) >= kRenderEps;
        if (!any)
            continue;
        out << "  ";
        out.width(11);
        out << std::left << componentName(c);
        for (const auto &s : stacks_in) {
            std::snprintf(buf, sizeof(buf), " %10.3f", s[c]);
            out << buf;
        }
        out << "\n";
    }

    out << "  ";
    out.width(11);
    out << std::left << "TOTAL";
    for (const auto &s : stacks_in) {
        std::snprintf(buf, sizeof(buf), " %10.3f", s.sum());
        out << buf;
    }
    out << "\n";
    return out.str();
}

std::string
renderFlopsStack(const stacks::FlopsStack &stack, const std::string &title,
                 const std::string &unit)
{
    std::ostringstream out;
    char buf[256];
    out << title << "\n";
    const double total = stack.sum();
    for (std::size_t i = 0; i < stacks::kNumFlopsComponents; ++i) {
        const auto c = static_cast<stacks::FlopsComponent>(i);
        if (std::abs(stack[c]) < kRenderEps * std::max(1.0, total))
            continue;
        std::snprintf(buf, sizeof(buf), "  %-10s %14.4g %s (%5.1f%%)\n",
                      std::string(componentName(c)).c_str(), stack[c],
                      unit.c_str(),
                      total == 0.0 ? 0.0 : 100.0 * stack[c] / total);
        out << buf;
    }
    std::snprintf(buf, sizeof(buf), "  %-10s %14.4g %s\n", "TOTAL", total,
                  unit.c_str());
    out << buf;
    return out.str();
}

std::string
renderMultiStage(const sim::SimResult &result, const std::string &workload)
{
    std::ostringstream out;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s on %s: %llu instrs, %llu cycles, CPI %.3f (IPC %.2f)\n",
                  workload.c_str(), result.machine.c_str(),
                  static_cast<unsigned long long>(result.instrs),
                  static_cast<unsigned long long>(result.cycles), result.cpi,
                  result.ipc());
    out << buf;
    out << renderCpiStacks(
        {result.cpiStack(stacks::Stage::kDispatch),
         result.cpiStack(stacks::Stage::kIssue),
         result.cpiStack(stacks::Stage::kCommit)},
        {"dispatch", "issue", "commit"}, "  CPI stacks:");
    return out.str();
}

std::string
formatFlops(double flops)
{
    char buf[64];
    if (flops >= 1e12)
        std::snprintf(buf, sizeof(buf), "%.2f TFLOPS", flops / 1e12);
    else if (flops >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.2f GFLOPS", flops / 1e9);
    else
        std::snprintf(buf, sizeof(buf), "%.2f MFLOPS", flops / 1e6);
    return buf;
}

}  // namespace stackscope::analysis
