#include "analysis/render.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string_view>
#include <vector>

namespace stackscope::analysis {

namespace {

constexpr double kRenderEps = 5e-4;

}  // namespace

std::string
renderCpiStack(const stacks::CpiStack &stack, const std::string &title)
{
    return renderCpiStacks({stack}, {title}, "");
}

std::string
renderCpiStacks(const std::vector<stacks::CpiStack> &stacks_in,
                const std::vector<std::string> &titles,
                const std::string &heading)
{
    std::ostringstream out;
    char buf[256];
    if (!heading.empty())
        out << heading << "\n";

    out << "  " << std::left;
    out.width(11);
    out << "component";
    for (const std::string &t : titles) {
        std::snprintf(buf, sizeof(buf), " %10s", t.c_str());
        out << buf;
    }
    out << "\n";

    for (std::size_t i = 0; i < stacks::kNumCpiComponents; ++i) {
        const auto c = static_cast<stacks::CpiComponent>(i);
        bool any = false;
        for (const auto &s : stacks_in)
            any = any || std::abs(s[c]) >= kRenderEps;
        if (!any)
            continue;
        out << "  ";
        out.width(11);
        out << std::left << componentName(c);
        for (const auto &s : stacks_in) {
            std::snprintf(buf, sizeof(buf), " %10.3f", s[c]);
            out << buf;
        }
        out << "\n";
    }

    out << "  ";
    out.width(11);
    out << std::left << "TOTAL";
    for (const auto &s : stacks_in) {
        std::snprintf(buf, sizeof(buf), " %10.3f", s.sum());
        out << buf;
    }
    out << "\n";
    return out.str();
}

std::string
renderFlopsStack(const stacks::FlopsStack &stack, const std::string &title,
                 const std::string &unit)
{
    std::ostringstream out;
    char buf[256];
    out << title << "\n";
    const double total = stack.sum();
    for (std::size_t i = 0; i < stacks::kNumFlopsComponents; ++i) {
        const auto c = static_cast<stacks::FlopsComponent>(i);
        if (std::abs(stack[c]) < kRenderEps * std::max(1.0, total))
            continue;
        std::snprintf(buf, sizeof(buf), "  %-10s %14.4g %s (%5.1f%%)\n",
                      std::string(componentName(c)).c_str(), stack[c],
                      unit.c_str(),
                      total == 0.0 ? 0.0 : 100.0 * stack[c] / total);
        out << buf;
    }
    std::snprintf(buf, sizeof(buf), "  %-10s %14.4g %s\n", "TOTAL", total,
                  unit.c_str());
    out << buf;
    return out.str();
}

std::string
renderMultiStage(const sim::SimResult &result, const std::string &workload)
{
    std::ostringstream out;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s on %s: %llu instrs, %llu cycles, CPI %.3f (IPC %.2f)\n",
                  workload.c_str(), result.machine.c_str(),
                  static_cast<unsigned long long>(result.instrs),
                  static_cast<unsigned long long>(result.cycles), result.cpi,
                  result.ipc());
    out << buf;
    out << renderCpiStacks(
        {result.cpiStack(stacks::Stage::kDispatch),
         result.cpiStack(stacks::Stage::kIssue),
         result.cpiStack(stacks::Stage::kCommit)},
        {"dispatch", "issue", "commit"}, "  CPI stacks:");
    return out.str();
}

namespace {

/** Glyph ramp for heatmap cells; index = round-down of share * 9. */
constexpr std::string_view kHeatRamp = " .:-=+*#%@";

char
heatGlyph(double share)
{
    if (!(share > 0.0))
        return kHeatRamp[0];
    auto idx = static_cast<std::size_t>(1.0 + share * 8.999);
    if (idx >= kHeatRamp.size())
        idx = kHeatRamp.size() - 1;
    return kHeatRamp[idx];
}

/**
 * Generic heatmap over any stack type: @p pick extracts the stack of one
 * sample. Buckets merge ceil(n/max_cols) adjacent windows per column.
 */
template <typename E, typename Pick>
std::string
renderHeatmap(const obs::IntervalSeries &series, const std::string &heading,
              std::size_t max_cols, Pick &&pick)
{
    constexpr std::size_t kComponents = stacks::StackT<E>::kSize;
    std::ostringstream out;
    if (!heading.empty())
        out << heading << "\n";
    if (series.samples.empty()) {
        out << "  (no interval samples)\n";
        return out.str();
    }
    if (max_cols == 0)
        max_cols = 1;
    const std::size_t n = series.samples.size();
    const std::size_t per_col = (n + max_cols - 1) / max_cols;
    const std::size_t cols = (n + per_col - 1) / per_col;

    // Bucketize: per-column component cycles and total cycles.
    std::vector<std::array<double, kComponents>> bucket(cols);
    std::vector<double> total(cols, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t col = i / per_col;
        pick(series.samples[i]).forEach([&](E c, double v) {
            bucket[col][static_cast<std::size_t>(c)] += v;
            total[col] += v;
        });
    }

    bool any_rows = false;
    for (std::size_t ci = 0; ci < kComponents; ++ci) {
        double mass = 0.0;
        for (std::size_t col = 0; col < cols; ++col)
            mass += bucket[col][ci];
        if (std::abs(mass) < kRenderEps)
            continue;
        any_rows = true;
        char label[32];
        std::snprintf(label, sizeof(label), "  %-10s|",
                      std::string(stacks::componentName(static_cast<E>(ci)))
                          .c_str());
        out << label;
        for (std::size_t col = 0; col < cols; ++col) {
            const double share =
                total[col] <= 0.0 ? 0.0 : bucket[col][ci] / total[col];
            out << heatGlyph(share);
        }
        out << "|\n";
    }
    if (!any_rows)
        out << "  (all components ~ zero)\n";

    char buf[160];
    const Cycle span_start = series.samples.front().start;
    const Cycle span_end = series.samples.back().end;
    std::snprintf(buf, sizeof(buf),
                  "  cycles %llu..%llu, %zu windows of ~%llu cycles, "
                  "%zu per column; scale \"%s\" = 0..100%% of column "
                  "cycles\n",
                  static_cast<unsigned long long>(span_start),
                  static_cast<unsigned long long>(span_end), n,
                  static_cast<unsigned long long>(series.window), per_col,
                  std::string(kHeatRamp).c_str());
    out << buf;
    return out.str();
}

}  // namespace

std::string
renderIntervalHeatmap(const obs::IntervalSeries &series, stacks::Stage stage,
                      const std::string &heading, std::size_t max_cols)
{
    return renderHeatmap<stacks::CpiComponent>(
        series, heading, max_cols,
        [stage](const obs::IntervalSample &s) -> const stacks::CpiStack & {
            return s.cycleStack(stage);
        });
}

std::string
renderFlopsIntervalHeatmap(const obs::IntervalSeries &series,
                           const std::string &heading, std::size_t max_cols)
{
    return renderHeatmap<stacks::FlopsComponent>(
        series, heading, max_cols,
        [](const obs::IntervalSample &s) -> const stacks::FlopsStack & {
            return s.flops_cycles;
        });
}

std::string
formatFlops(double flops)
{
    char buf[64];
    if (flops >= 1e12)
        std::snprintf(buf, sizeof(buf), "%.2f TFLOPS", flops / 1e12);
    else if (flops >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.2f GFLOPS", flops / 1e9);
    else
        std::snprintf(buf, sizeof(buf), "%.2f MFLOPS", flops / 1e6);
    return buf;
}

}  // namespace stackscope::analysis
