/**
 * @file
 * Text rendering of CPI, IPC and FLOPS stacks: numeric tables and ASCII
 * stacked bars in the style of the paper's figures.
 */

#ifndef STACKSCOPE_ANALYSIS_RENDER_HPP
#define STACKSCOPE_ANALYSIS_RENDER_HPP

#include <string>
#include <vector>

#include "obs/interval.hpp"
#include "sim/simulation.hpp"
#include "stacks/stack.hpp"

namespace stackscope::analysis {

/** Render one CPI stack as a labelled table (skipping ~zero components). */
std::string renderCpiStack(const stacks::CpiStack &stack,
                           const std::string &title);

/**
 * Render several CPI stacks side by side (e.g., dispatch/issue/commit, or
 * the same stack across idealizations) with one row per component.
 */
std::string renderCpiStacks(const std::vector<stacks::CpiStack> &stacks,
                            const std::vector<std::string> &titles,
                            const std::string &heading);

/** Render a FLOPS stack table; @p unit names the value column. */
std::string renderFlopsStack(const stacks::FlopsStack &stack,
                             const std::string &title,
                             const std::string &unit = "cycles");

/** Render the three stage stacks of a run plus summary lines. */
std::string renderMultiStage(const sim::SimResult &result,
                             const std::string &workload);

/** Human-friendly flops/s formatting ("1.73 TFLOPS"). */
std::string formatFlops(double flops);

/**
 * ASCII heatmap of an interval time-series for one stage: one row per
 * CPI component (rows with no mass anywhere are skipped), one column per
 * time bucket (windows are merged left-to-right so at most @p max_cols
 * columns appear). Cell glyphs encode the component's share of the
 * bucket's cycles on the ramp " .:-=+*#%@" (space = 0, '@' ~ 100%).
 */
std::string renderIntervalHeatmap(const obs::IntervalSeries &series,
                                  stacks::Stage stage,
                                  const std::string &heading,
                                  std::size_t max_cols = 80);

/** Same heatmap for the FLOPS stack components. */
std::string renderFlopsIntervalHeatmap(const obs::IntervalSeries &series,
                                       const std::string &heading,
                                       std::size_t max_cols = 80);

}  // namespace stackscope::analysis

#endif  // STACKSCOPE_ANALYSIS_RENDER_HPP
