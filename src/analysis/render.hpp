/**
 * @file
 * Text rendering of CPI, IPC and FLOPS stacks: numeric tables and ASCII
 * stacked bars in the style of the paper's figures.
 */

#ifndef STACKSCOPE_ANALYSIS_RENDER_HPP
#define STACKSCOPE_ANALYSIS_RENDER_HPP

#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "stacks/stack.hpp"

namespace stackscope::analysis {

/** Render one CPI stack as a labelled table (skipping ~zero components). */
std::string renderCpiStack(const stacks::CpiStack &stack,
                           const std::string &title);

/**
 * Render several CPI stacks side by side (e.g., dispatch/issue/commit, or
 * the same stack across idealizations) with one row per component.
 */
std::string renderCpiStacks(const std::vector<stacks::CpiStack> &stacks,
                            const std::vector<std::string> &titles,
                            const std::string &heading);

/** Render a FLOPS stack table; @p unit names the value column. */
std::string renderFlopsStack(const stacks::FlopsStack &stack,
                             const std::string &title,
                             const std::string &unit = "cycles");

/** Render the three stage stacks of a run plus summary lines. */
std::string renderMultiStage(const sim::SimResult &result,
                             const std::string &workload);

/** Human-friendly flops/s formatting ("1.73 TFLOPS"). */
std::string formatFlops(double flops);

}  // namespace stackscope::analysis

#endif  // STACKSCOPE_ANALYSIS_RENDER_HPP
