#include "common/rng.hpp"

#include <cassert>

namespace stackscope {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    assert(bound > 0);
    // Lemire-style rejection-free reduction is fine for simulation purposes;
    // the modulo bias for 64-bit inputs is negligible.
    return next() % bound;
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::burstLength(double p, std::uint64_t max_len)
{
    std::uint64_t len = 1;
    while (len < max_len && chance(p))
        ++len;
    return len;
}

std::size_t
Rng::weighted(std::span<const double> weights)
{
    assert(!weights.empty());
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        return weights.size() - 1;
    double pick = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        pick -= weights[i];
        if (pick < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    Rng child(next());
    // Decorrelate further: burn a few outputs mixed with fresh entropy.
    child.s_[0] ^= next();
    child.s_[2] ^= next();
    return child;
}

}  // namespace stackscope
