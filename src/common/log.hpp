/**
 * @file
 * Structured, levelled logging for every stackscope subsystem.
 *
 * Diagnostics used to be ad-hoc stderr writes scattered through the CLI;
 * a library embedded in services needs one funnel with levels, stable
 * structure and machine-readable output. This logger provides
 *
 *  - five levels (trace/debug/info/warn/error) with a process-wide
 *    threshold, controlled by the STACKSCOPE_LOG environment variable;
 *  - structured key=value fields attached to every record;
 *  - a thread-safe sink: human-readable lines on stderr by default, or
 *    JSON-lines when STACKSCOPE_LOG_JSON=1 (one object per record, for
 *    log shippers);
 *  - a replaceable writer so tests can capture records.
 *
 * Disabled-level calls cost one relaxed atomic load — cheap enough to
 * leave debug statements in hot-ish paths (the <2% telemetry budget of
 * bench/overhead_accounting covers them).
 */

#ifndef STACKSCOPE_COMMON_LOG_HPP
#define STACKSCOPE_COMMON_LOG_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace stackscope::log {

enum class Level
{
    kTrace,
    kDebug,
    kInfo,
    kWarn,
    kError,
    kOff,
};

std::string_view toString(Level level);

/** Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-sensitive). */
std::optional<Level> parseLevel(std::string_view text);

/** One structured key/value field of a log record. */
struct Field
{
    std::string_view key;
    std::string value;

    Field(std::string_view k, std::string v) : key(k), value(std::move(v)) {}
    Field(std::string_view k, std::string_view v) : key(k), value(v) {}
    Field(std::string_view k, const char *v) : key(k), value(v) {}
    Field(std::string_view k, std::uint64_t v)
        : key(k), value(std::to_string(v))
    {
    }
    Field(std::string_view k, std::int64_t v)
        : key(k), value(std::to_string(v))
    {
    }
    Field(std::string_view k, unsigned v) : key(k), value(std::to_string(v))
    {
    }
    Field(std::string_view k, int v) : key(k), value(std::to_string(v)) {}
    Field(std::string_view k, double v) : key(k), value(std::to_string(v)) {}
};

namespace detail {

/** Current threshold as int; negative = not yet configured from env. */
inline std::atomic<int> g_threshold{-1};

/** Configure from the environment, then answer enabled(@p level). */
bool enabledSlow(Level level);

}  // namespace detail

/**
 * True when records at @p level pass the current threshold. Inline: a
 * disabled call in a hot loop costs one relaxed load and a compare.
 */
inline bool
enabled(Level level)
{
    const int t = detail::g_threshold.load(std::memory_order_relaxed);
    if (t < 0) [[unlikely]]
        return detail::enabledSlow(level);
    return static_cast<int>(level) >= t;
}

Level threshold();
void setThreshold(Level level);

/** Emit JSON-lines records instead of human-readable text. */
void setJsonOutput(bool json);
bool jsonOutput();

/**
 * Re-read STACKSCOPE_LOG (level, default warn) and STACKSCOPE_LOG_JSON
 * ("1" switches to JSON-lines). Called lazily on first use; front-ends
 * may call it explicitly after mutating the environment.
 */
void configureFromEnv();

/**
 * Replace the sink for tests (nullptr restores stderr). The writer
 * receives one fully formatted record, without a trailing newline, and
 * is called under the logger's mutex.
 */
void setWriterForTest(std::function<void(const std::string &)> writer);

/**
 * Emit one record. @p module names the subsystem ("runner", "sim",
 * "validate", "cli", ...); @p fields attach structured context. The
 * vector overload serves call sites whose field set is only known at
 * run time (the serve access log attaches one field per recorded span).
 */
void message(Level level, std::string_view module, std::string_view text,
             std::initializer_list<Field> fields = {});
void message(Level level, std::string_view module, std::string_view text,
             const std::vector<Field> &fields);

// The wrappers check enabled() before calling message(): a disabled
// record never crosses a TU boundary. (Field construction still happens
// at the call site before the check; callers formatting expensive values
// should guard with enabled() themselves.)

inline void
trace(std::string_view module, std::string_view text,
      std::initializer_list<Field> fields = {})
{
    if (enabled(Level::kTrace))
        message(Level::kTrace, module, text, fields);
}

inline void
debug(std::string_view module, std::string_view text,
      std::initializer_list<Field> fields = {})
{
    if (enabled(Level::kDebug))
        message(Level::kDebug, module, text, fields);
}

inline void
info(std::string_view module, std::string_view text,
     std::initializer_list<Field> fields = {})
{
    if (enabled(Level::kInfo))
        message(Level::kInfo, module, text, fields);
}

inline void
warn(std::string_view module, std::string_view text,
     std::initializer_list<Field> fields = {})
{
    if (enabled(Level::kWarn))
        message(Level::kWarn, module, text, fields);
}

inline void
error(std::string_view module, std::string_view text,
      std::initializer_list<Field> fields = {})
{
    if (enabled(Level::kError))
        message(Level::kError, module, text, fields);
}

}  // namespace stackscope::log

#endif  // STACKSCOPE_COMMON_LOG_HPP
