#include "common/stats_math.hpp"

#include <algorithm>
#include <cmath>

namespace stackscope {

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
percentileSorted(std::span<const double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double
percentile(std::span<const double> xs, double q)
{
    if (xs.empty())
        return 0.0;
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    return percentileSorted(sorted, q);
}

FiveNumberSummary
fiveNumberSummary(std::span<const double> xs)
{
    FiveNumberSummary s;
    if (xs.empty())
        return s;
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    s.q1 = percentileSorted(sorted, 0.25);
    s.median = percentileSorted(sorted, 0.50);
    s.q3 = percentileSorted(sorted, 0.75);
    return s;
}

}  // namespace stackscope
