#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace stackscope::log {

namespace {

std::atomic<bool> g_json{false};

std::mutex g_sink_mutex;
std::function<void(const std::string &)> g_writer;  // null = stderr

/** Milliseconds since the first record (monotonic; for humans, not sync). */
std::uint64_t
elapsedMs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point start = clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() -
                                                              start)
            .count());
}

/**
 * Minimal JSON string escaping. Duplicated from obs/json.cpp on purpose:
 * common/ sits below obs/ in the layering and must not link it.
 */
std::string
escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        const auto c = static_cast<unsigned char>(ch);
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

}  // namespace

namespace detail {

bool
enabledSlow(Level level)
{
    configureFromEnv();  // leaves g_threshold non-negative
    return enabled(level);
}

}  // namespace detail

std::string_view
toString(Level level)
{
    switch (level) {
      case Level::kTrace: return "trace";
      case Level::kDebug: return "debug";
      case Level::kInfo: return "info";
      case Level::kWarn: return "warn";
      case Level::kError: return "error";
      case Level::kOff: return "off";
    }
    return "off";
}

std::optional<Level>
parseLevel(std::string_view text)
{
    for (const Level level :
         {Level::kTrace, Level::kDebug, Level::kInfo, Level::kWarn,
          Level::kError, Level::kOff}) {
        if (text == toString(level))
            return level;
    }
    return std::nullopt;
}

Level
threshold()
{
    if (detail::g_threshold.load(std::memory_order_relaxed) < 0)
        configureFromEnv();
    return static_cast<Level>(
        detail::g_threshold.load(std::memory_order_relaxed));
}

void
setThreshold(Level level)
{
    detail::g_threshold.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

void
setJsonOutput(bool json)
{
    g_json.store(json, std::memory_order_relaxed);
}

bool
jsonOutput()
{
    return g_json.load(std::memory_order_relaxed);
}

void
configureFromEnv()
{
    Level level = Level::kWarn;
    if (const char *env = std::getenv("STACKSCOPE_LOG")) {
        if (const std::optional<Level> parsed = parseLevel(env))
            level = *parsed;
    }
    detail::g_threshold.store(static_cast<int>(level),
                              std::memory_order_relaxed);
    if (const char *env = std::getenv("STACKSCOPE_LOG_JSON"))
        g_json.store(env[0] == '1', std::memory_order_relaxed);
}

void
setWriterForTest(std::function<void(const std::string &)> writer)
{
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    g_writer = std::move(writer);
}

namespace {

void
messageImpl(Level level, std::string_view module, std::string_view text,
            const Field *begin, const Field *end)
{
    if (level == Level::kOff || !enabled(level))
        return;

    const std::uint64_t t_ms = elapsedMs();
    std::string line;
    if (jsonOutput()) {
        line = "{\"t_ms\":" + std::to_string(t_ms) + ",\"level\":\"" +
               std::string(toString(level)) + "\",\"module\":\"" +
               escape(module) + "\",\"msg\":\"" + escape(text) + "\"";
        for (const Field *f = begin; f != end; ++f)
            line += ",\"" + escape(f->key) + "\":\"" + escape(f->value) +
                    "\"";
        line += "}";
    } else {
        line = "stackscope[" + std::string(toString(level)) + "] " +
               std::string(module) + ": " + std::string(text);
        for (const Field *f = begin; f != end; ++f)
            line += " " + std::string(f->key) + "=" + f->value;
    }

    std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (g_writer) {
        g_writer(line);
        return;
    }
    std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace

void
message(Level level, std::string_view module, std::string_view text,
        std::initializer_list<Field> fields)
{
    messageImpl(level, module, text, fields.begin(), fields.end());
}

void
message(Level level, std::string_view module, std::string_view text,
        const std::vector<Field> &fields)
{
    messageImpl(level, module, text, fields.data(),
                fields.data() + fields.size());
}

}  // namespace stackscope::log
