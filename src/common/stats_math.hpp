/**
 * @file
 * Small statistics helpers used by the analysis toolbox: means, percentiles
 * and five-number summaries for the Figure 2 style box plots.
 */

#ifndef STACKSCOPE_COMMON_STATS_MATH_HPP
#define STACKSCOPE_COMMON_STATS_MATH_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace stackscope {

/** Arithmetic mean; returns 0 for an empty input. */
double mean(std::span<const double> xs);

/**
 * Sample standard deviation (n−1 divisor, Bessel's correction); returns 0
 * for fewer than two samples. The error populations of the Fig. 2 study
 * are samples of a larger workload space, so the unbiased estimator is
 * the right one.
 */
double stddev(std::span<const double> xs);

/**
 * Linear-interpolated percentile of an *unsorted* sample, q in [0, 1].
 * Uses the common "linear interpolation between closest ranks" definition
 * (numpy default). Returns 0 for an empty input. Copies and sorts the
 * input; callers holding already-sorted data should use
 * percentileSorted() instead.
 */
double percentile(std::span<const double> xs, double q);

/**
 * percentile() on data the caller guarantees is already sorted
 * ascending — no copy, no re-sort.
 */
double percentileSorted(std::span<const double> sorted, double q);

/**
 * Five-number summary of a sample, as used in a box-and-whisker plot:
 * minimum, first quartile, median, third quartile, maximum
 * (whiskers extend to the extreme values, as in the paper's Figure 2).
 */
struct FiveNumberSummary
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    std::size_t count = 0;
};

/** Compute the five-number summary of an unsorted sample. */
FiveNumberSummary fiveNumberSummary(std::span<const double> xs);

}  // namespace stackscope

#endif  // STACKSCOPE_COMMON_STATS_MATH_HPP
