/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in stackscope (synthetic trace generation,
 * wrong-path filler instructions, address streams) must be reproducible
 * from a seed so that idealization experiments replay the exact same
 * instruction stream. We therefore use our own small PRNG rather than
 * std::mt19937 with library-defined distributions, whose results may vary
 * across standard library implementations.
 */

#ifndef STACKSCOPE_COMMON_RNG_HPP
#define STACKSCOPE_COMMON_RNG_HPP

#include <cstdint>
#include <span>

namespace stackscope {

/**
 * A splitmix64-seeded xoshiro256** generator.
 *
 * Fast, high quality, and fully specified by this header — results are
 * identical on every platform and standard library.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; distinct seeds give distinct streams. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) ; bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Geometric-ish burst length: number of consecutive successes with
     * continuation probability p, capped at max_len. Used to model bursty
     * miss behaviour.
     */
    std::uint64_t burstLength(double p, std::uint64_t max_len);

    /**
     * Sample an index from a discrete distribution given by non-negative
     * weights. Returns weights.size() - 1 if all weights are zero.
     */
    std::size_t weighted(std::span<const double> weights);

    /**
     * Derive a statistically independent child generator. Used to give each
     * workload sub-stream (addresses, branches, dependences) its own RNG so
     * consuming one stream never perturbs another.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

}  // namespace stackscope

#endif  // STACKSCOPE_COMMON_RNG_HPP
