/**
 * @file
 * Structured, recoverable error handling for all stackscope subsystems.
 *
 * Historically fatal conditions (bad configuration, API misuse, violated
 * accounting invariants) surfaced as bare `assert` or `std::exit`, which
 * is unacceptable for a library embedded in long-running services: a
 * single bad request must not take the process down, and callers need
 * enough structure to map failures onto exit codes / HTTP statuses /
 * retry policies. This header provides
 *
 *  - ErrorCategory: a coarse taxonomy mapped onto process exit codes;
 *  - StackscopeError: an exception carrying category, message and a list
 *    of key/value context pairs (machine, workload, invariant, ...);
 *  - Result<T>: a value-or-error return type for call sites that prefer
 *    explicit propagation over exceptions.
 */

#ifndef STACKSCOPE_COMMON_ERROR_HPP
#define STACKSCOPE_COMMON_ERROR_HPP

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace stackscope {

/** Coarse failure taxonomy; determines the CLI exit code. */
enum class ErrorCategory
{
    kUsage,       ///< malformed command line / bad argument value
    kConfig,      ///< inconsistent machine or accounting configuration
    kValidation,  ///< a runtime stack invariant was violated
    kWatchdog,    ///< the run watchdog aborted a stuck simulation
    kInternal,    ///< API misuse or broken internal invariant (a bug)
};

constexpr const char *
toString(ErrorCategory c)
{
    switch (c) {
      case ErrorCategory::kUsage:
        return "usage";
      case ErrorCategory::kConfig:
        return "config";
      case ErrorCategory::kValidation:
        return "validation";
      case ErrorCategory::kWatchdog:
        return "watchdog";
      case ErrorCategory::kInternal:
        return "internal";
    }
    return "unknown";
}

/** Process exit code for a failure category (0 is success). */
constexpr int
exitCodeFor(ErrorCategory c)
{
    switch (c) {
      case ErrorCategory::kUsage:
      case ErrorCategory::kConfig:
        return 2;
      case ErrorCategory::kValidation:
      case ErrorCategory::kWatchdog:
        return 3;
      case ErrorCategory::kInternal:
        return 1;
    }
    return 1;
}

/**
 * Batch exit codes beyond the per-category ones: a `--keep-going` batch
 * that loses some jobs but finishes others is a *partial* success, and
 * one that loses every job a *total* failure. Documented with the rest
 * of the contract in docs/exit_codes.md.
 */
inline constexpr int kExitPartialSuccess = 5;
inline constexpr int kExitTotalFailure = 6;

/**
 * Daemon exit codes (`stackscope serve`, docs/serving.md): a listener
 * that cannot bind (socket path already served, TCP port in use) exits
 * 7 so supervisors can distinguish "another instance is running" from
 * ordinary config errors; a shutdown whose in-flight connections do not
 * drain within --drain-timeout exits 8.
 */
inline constexpr int kExitBindFailure = 7;
inline constexpr int kExitDrainTimeout = 8;

/**
 * Default retryability of a failure category. Watchdog trips (deadline,
 * no-retire) and validation violations are worth one more attempt — a
 * transient host stall or an injected transient fault produces exactly
 * these — while usage/config errors are deterministic and internal
 * errors are bugs; re-running either just fails again.
 */
constexpr bool
retryableCategory(ErrorCategory c)
{
    switch (c) {
      case ErrorCategory::kValidation:
      case ErrorCategory::kWatchdog:
        return true;
      case ErrorCategory::kUsage:
      case ErrorCategory::kConfig:
      case ErrorCategory::kInternal:
        return false;
    }
    return false;
}

/**
 * The stackscope exception: a category, a human-readable message and
 * optional key/value context attached at the throw site or while the
 * error propagates upward.
 */
class StackscopeError : public std::runtime_error
{
  public:
    using Context = std::vector<std::pair<std::string, std::string>>;

    StackscopeError(ErrorCategory category, std::string message)
        : std::runtime_error(std::move(message)), category_(category)
    {
    }

    /** Attach one key/value pair; chainable at the throw site. */
    StackscopeError &
    withContext(std::string key, std::string value)
    {
        context_.emplace_back(std::move(key), std::move(value));
        return *this;
    }

    ErrorCategory category() const { return category_; }
    const Context &context() const { return context_; }
    int exitCode() const { return exitCodeFor(category_); }

    /** "category error: message [key=value, ...]" for terminal output. */
    std::string
    describe() const
    {
        std::string out = std::string(toString(category_)) + " error: " +
                          what();
        if (!context_.empty()) {
            out += " [";
            bool first = true;
            for (const auto &[k, v] : context_) {
                if (!first)
                    out += ", ";
                first = false;
                out += k + "=" + v;
            }
            out += "]";
        }
        return out;
    }

  private:
    ErrorCategory category_;
    Context context_;
};

/**
 * Value-or-error return type.
 *
 * A lightweight std::expected stand-in: holds either a T or a
 * StackscopeError. value() on an error rethrows the stored error, so
 * callers may either branch on ok() or let the exception propagate.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : v_(std::move(value)) {}                  // NOLINT
    Result(StackscopeError error) : v_(std::move(error)) {}    // NOLINT

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    /** The value; throws the stored StackscopeError when !ok(). */
    T &
    value()
    {
        if (!ok())
            throw std::get<StackscopeError>(v_);
        return std::get<T>(v_);
    }
    const T &
    value() const
    {
        if (!ok())
            throw std::get<StackscopeError>(v_);
        return std::get<T>(v_);
    }

    /** The value, or @p fallback when this holds an error. */
    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<T>(v_) : std::move(fallback);
    }

    /** The error; must not be called when ok(). */
    const StackscopeError &
    error() const
    {
        return std::get<StackscopeError>(v_);
    }

  private:
    std::variant<T, StackscopeError> v_;
};

/** Result<void>: success marker or error. */
template <>
class Result<void>
{
  public:
    Result() = default;
    Result(StackscopeError error) : error_(std::move(error)) {}  // NOLINT

    bool ok() const { return !error_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** Throws the stored error when !ok(). */
    void
    value() const
    {
        if (error_)
            throw *error_;
    }

    const StackscopeError &error() const { return *error_; }

  private:
    std::optional<StackscopeError> error_;
};

}  // namespace stackscope

#endif  // STACKSCOPE_COMMON_ERROR_HPP
