/**
 * @file
 * Portable SIMD primitives for the issue stage's ready-bound scan.
 *
 * The hot operation is a block scan over eight 32-bit readiness keys:
 * which lanes are due (`key <= now_key`, so the entry must be
 * re-evaluated), and what is the earliest key among the lanes that are
 * still parked. Keys are epoch-relative cycle numbers maintained by the
 * reservation station (uarch/reservation_station.hpp): the true 64-bit
 * bound minus a rebased epoch, saturated to kNeverKey. The station
 * guarantees every key is <= kNeverKey < 2^31, which is what makes the
 * *signed* 32-bit compares below correct — SSE2 has no unsigned 32-bit
 * compare, and the 64-bit emulation this replaces cost ~10x more per
 * lane.
 *
 * Two pieces:
 *
 *  - dueMask8(): stateless compare-only mask for one block (used for the
 *    mid-walk re-arm rescan, which discards the wake minimum);
 *  - ReadyScanner: per-walk state that answers dueMask per block while
 *    accumulating the wake minimum as a lane-parallel running min,
 *    reduced horizontally once at wakeKey() instead of once per block.
 *
 * Backends: SSE2 (x86-64 baseline — no feature detection needed), NEON
 * (AArch64, native u32 compare/min), and a scalar loop selected when
 * neither ISA is available or the build forces -DSTACKSCOPE_NO_SIMD=ON
 * (the CI leg that keeps the fallback honest). Selection is purely
 * compile-time; `kImplName` records the choice for benchmark output. All
 * backends are bit-for-bit equivalent (tests/common/simd_test.cpp checks
 * them against the scalar oracle on adversarial and random inputs); the
 * scan result feeds accounting-visible blame selection, so equivalence
 * is a correctness requirement, not a nicety.
 */

#ifndef STACKSCOPE_COMMON_SIMD_HPP
#define STACKSCOPE_COMMON_SIMD_HPP

#include <cstdint>

#if !defined(STACKSCOPE_NO_SIMD) && \
    (defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64))
#define STACKSCOPE_SIMD_X86 1
#include <emmintrin.h>
#elif !defined(STACKSCOPE_NO_SIMD) && defined(__aarch64__)
#define STACKSCOPE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace stackscope::simd {

/** Lanes per scan block; key arrays must be padded to a multiple of this
 *  with kNeverKey sentinels. */
inline constexpr unsigned kScanBlock = 8;

/**
 * Parked-forever / padding sentinel, and the saturation value for keys
 * too far in the future to matter. Largest positive int32: every valid
 * key is <= kNeverKey, keeping signed compares faithful to the unsigned
 * order.
 */
inline constexpr std::uint32_t kNeverKey = 0x7fffffffu;

/**
 * Scalar reference semantics of one scan block (also the oracle the unit
 * test checks the vector backends against).
 *
 * @return bits [0,8): bit i set iff keys[i] <= now_key ("due": the entry
 *         must be re-evaluated this cycle). @p wake_min is lowered to the
 *         minimum key among lanes with keys[i] > now_key (parked lanes);
 *         kNeverKey lanes (park sentinel, padding) leave it unchanged
 *         because kNeverKey never lowers it.
 */
inline std::uint32_t
dueMask8Scalar(const std::uint32_t *keys, std::uint32_t now_key,
               std::uint32_t &wake_min)
{
    std::uint32_t mask = 0;
    for (unsigned i = 0; i < kScanBlock; ++i) {
        if (keys[i] <= now_key) {
            mask |= 1u << i;
        } else if (keys[i] < wake_min) {
            wake_min = keys[i];
        }
    }
    return mask;
}

#if defined(STACKSCOPE_SIMD_X86)

inline constexpr const char *kImplName = "sse2";

/** Compare-only due mask for one block; ignores the wake minimum. */
inline std::uint32_t
dueMask8(const std::uint32_t *keys, std::uint32_t now_key)
{
    const __m128i vnow = _mm_set1_epi32(static_cast<int>(now_key));
    const __m128i v0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(keys));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(keys + 4));
    // Keys and now_key are <= kNeverKey (positive int32), so the signed
    // compare realizes the unsigned order.
    const std::uint32_t parked =
        static_cast<std::uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(v0, vnow)))) |
        (static_cast<std::uint32_t>(_mm_movemask_ps(
             _mm_castsi128_ps(_mm_cmpgt_epi32(v1, vnow))))
         << 4);
    return ~parked & 0xffu;
}

/** Due-mask scan with deferred wake-minimum reduction (one walk). */
class ReadyScanner
{
  public:
    explicit ReadyScanner(std::uint32_t now_key)
        : vnow_(_mm_set1_epi32(static_cast<int>(now_key))),
          never_(_mm_set1_epi32(static_cast<int>(kNeverKey))),
          wmin_(never_)
    {
    }

    std::uint32_t
    block(const std::uint32_t *keys)
    {
        const __m128i v0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(keys));
        const __m128i v1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(keys + 4));
        const __m128i p0 = _mm_cmpgt_epi32(v0, vnow_);
        const __m128i p1 = _mm_cmpgt_epi32(v1, vnow_);
        const std::uint32_t parked =
            static_cast<std::uint32_t>(
                _mm_movemask_ps(_mm_castsi128_ps(p0))) |
            (static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(p1)))
             << 4);
        // Parked lanes keep their key, due lanes become kNeverKey so the
        // running min ignores them; the horizontal reduce waits for
        // wakeKey().
        wmin_ = minS32(wmin_, blend(p0, v0, never_));
        wmin_ = minS32(wmin_, blend(p1, v1, never_));
        return ~parked & 0xffu;
    }

    std::uint32_t
    wakeKey() const
    {
        __m128i m = minS32(
            wmin_, _mm_shuffle_epi32(wmin_, _MM_SHUFFLE(1, 0, 3, 2)));
        m = minS32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
        return static_cast<std::uint32_t>(_mm_cvtsi128_si32(m));
    }

  private:
    static __m128i
    blend(__m128i mask, __m128i a, __m128i b)
    {
        return _mm_or_si128(_mm_and_si128(mask, a),
                            _mm_andnot_si128(mask, b));
    }

    static __m128i
    minS32(__m128i a, __m128i b)
    {
        return blend(_mm_cmpgt_epi32(a, b), b, a);
    }

    __m128i vnow_;
    __m128i never_;
    __m128i wmin_;
};

#elif defined(STACKSCOPE_SIMD_NEON)

inline constexpr const char *kImplName = "neon";

namespace detail {

inline std::uint32_t
parkedBits(uint32x4_t p0, uint32x4_t p1)
{
    // Narrow each comparison mask to 16 bits per lane, collect one bit
    // per lane.
    const uint16x8_t n = vcombine_u16(vmovn_u32(p0), vmovn_u32(p1));
    const uint16x8_t bit = {1, 2, 4, 8, 16, 32, 64, 128};
    return vaddvq_u16(vandq_u16(n, bit));
}

}  // namespace detail

/** Compare-only due mask for one block; ignores the wake minimum. */
inline std::uint32_t
dueMask8(const std::uint32_t *keys, std::uint32_t now_key)
{
    const uint32x4_t vnow = vdupq_n_u32(now_key);
    const uint32x4_t v0 = vld1q_u32(keys);
    const uint32x4_t v1 = vld1q_u32(keys + 4);
    const std::uint32_t parked =
        detail::parkedBits(vcgtq_u32(v0, vnow), vcgtq_u32(v1, vnow));
    return ~parked & 0xffu;
}

/** Due-mask scan with deferred wake-minimum reduction (one walk). */
class ReadyScanner
{
  public:
    explicit ReadyScanner(std::uint32_t now_key)
        : vnow_(vdupq_n_u32(now_key)),
          never_(vdupq_n_u32(kNeverKey)),
          wmin_(never_)
    {
    }

    std::uint32_t
    block(const std::uint32_t *keys)
    {
        const uint32x4_t v0 = vld1q_u32(keys);
        const uint32x4_t v1 = vld1q_u32(keys + 4);
        const uint32x4_t p0 = vcgtq_u32(v0, vnow_);
        const uint32x4_t p1 = vcgtq_u32(v1, vnow_);
        wmin_ = vminq_u32(wmin_, vbslq_u32(p0, v0, never_));
        wmin_ = vminq_u32(wmin_, vbslq_u32(p1, v1, never_));
        return ~detail::parkedBits(p0, p1) & 0xffu;
    }

    std::uint32_t wakeKey() const { return vminvq_u32(wmin_); }

  private:
    uint32x4_t vnow_;
    uint32x4_t never_;
    uint32x4_t wmin_;
};

#else

inline constexpr const char *kImplName = "scalar";

/** Compare-only due mask for one block; ignores the wake minimum. */
inline std::uint32_t
dueMask8(const std::uint32_t *keys, std::uint32_t now_key)
{
    std::uint32_t scratch = kNeverKey;
    return dueMask8Scalar(keys, now_key, scratch);
}

/** Due-mask scan with deferred wake-minimum reduction (one walk). */
class ReadyScanner
{
  public:
    explicit ReadyScanner(std::uint32_t now_key)
        : now_key_(now_key)
    {
    }

    std::uint32_t
    block(const std::uint32_t *keys)
    {
        return dueMask8Scalar(keys, now_key_, wake_min_);
    }

    std::uint32_t wakeKey() const { return wake_min_; }

  private:
    std::uint32_t now_key_;
    std::uint32_t wake_min_ = kNeverKey;
};

#endif

}  // namespace stackscope::simd

#endif  // STACKSCOPE_COMMON_SIMD_HPP
