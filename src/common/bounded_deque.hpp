/**
 * @file
 * Fixed-capacity ring deque for hot-loop queues.
 *
 * std::deque allocates (and frees) chunk nodes as it grows and shrinks;
 * in the core's fetch queue and store queue that shows up as malloc
 * traffic on every misprediction squash. BoundedDeque keeps one flat
 * allocation sized at construction and wraps indices, so push/pop are a
 * couple of integer ops and clear() never releases memory.
 */

#ifndef STACKSCOPE_COMMON_BOUNDED_DEQUE_HPP
#define STACKSCOPE_COMMON_BOUNDED_DEQUE_HPP

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

namespace stackscope {

template <typename T>
class BoundedDeque
{
  public:
    explicit BoundedDeque(std::size_t capacity)
        : slots_(capacity == 0 ? 1 : capacity)
    {
    }

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == slots_.size(); }
    std::size_t capacity() const { return slots_.size(); }

    T &
    front()
    {
        assert(count_ > 0);
        return slots_[head_];
    }

    const T &
    front() const
    {
        assert(count_ > 0);
        return slots_[head_];
    }

    T &
    back()
    {
        assert(count_ > 0);
        return slots_[wrap(head_ + count_ - 1)];
    }

    const T &
    back() const
    {
        assert(count_ > 0);
        return slots_[wrap(head_ + count_ - 1)];
    }

    /** Logical indexing: [0] is the front. */
    const T &
    operator[](std::size_t i) const
    {
        assert(i < count_);
        return slots_[wrap(head_ + i)];
    }

    void
    push_back(T value)
    {
        assert(!full());
        slots_[wrap(head_ + count_)] = std::move(value);
        ++count_;
    }

    /**
     * Append a default-constructed element and return it for in-place
     * filling — one write into the ring instead of construct + move.
     */
    T &
    emplace_back()
    {
        assert(!full());
        T &slot = slots_[wrap(head_ + count_)];
        slot = T{};
        ++count_;
        return slot;
    }

    void
    pop_front()
    {
        assert(count_ > 0);
        release(slots_[head_]);
        head_ = wrap(head_ + 1);
        --count_;
    }

    void
    pop_back()
    {
        assert(count_ > 0);
        release(slots_[wrap(head_ + count_ - 1)]);
        --count_;
    }

    void
    clear()
    {
        while (count_ > 0)
            pop_back();
        head_ = 0;
    }

  private:
    /**
     * Release a popped slot's payload eagerly so resource-owning types
     * don't hold memory while logically outside the deque. For trivially
     * destructible payloads (the hot-path case) there is nothing to
     * release and the overwrite would be a wasted memset.
     */
    static void
    release(T &slot)
    {
        if constexpr (!std::is_trivially_destructible_v<T>)
            slot = T{};
    }

    std::size_t
    wrap(std::size_t i) const
    {
        return i < slots_.size() ? i : i - slots_.size();
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

}  // namespace stackscope

#endif  // STACKSCOPE_COMMON_BOUNDED_DEQUE_HPP
