/**
 * @file
 * Fundamental scalar types shared across all stackscope subsystems.
 */

#ifndef STACKSCOPE_COMMON_TYPES_HPP
#define STACKSCOPE_COMMON_TYPES_HPP

#include <cstdint>

namespace stackscope {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Byte address in the simulated (code or data) address space. */
using Addr = std::uint64_t;

/**
 * Global dynamic-instruction sequence number.
 *
 * Sequence numbers are assigned in fetch order and are strictly increasing
 * over the lifetime of a core, including across squashed wrong-path
 * instructions. They double as dependence tokens: a consumer records the
 * sequence numbers of its producers.
 */
using SeqNum = std::uint64_t;

/** Sentinel meaning "no sequence number" / "no producer". */
inline constexpr SeqNum kNoSeq = ~SeqNum{0};

/** Sentinel meaning "event has not happened yet". */
inline constexpr Cycle kNeverCycle = ~Cycle{0};

}  // namespace stackscope

#endif  // STACKSCOPE_COMMON_TYPES_HPP
