// CycleState is a plain data record; see cycle_state.hpp.
#include "stacks/cycle_state.hpp"
