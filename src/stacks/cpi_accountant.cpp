#include "stacks/cpi_accountant.hpp"

#include <string>

#include "common/error.hpp"

namespace stackscope::stacks {

CpiAccountant::CpiAccountant(const CpiAccountantConfig &config)
    : config_(config)
{
    if (config_.effective_width == 0) {
        throw StackscopeError(ErrorCategory::kConfig,
                              "CPI accountant needs an accounting width "
                              ">= 1")
            .withContext("stage", std::string(toString(config_.stage)));
    }
}

void
CpiAccountant::add(CpiComponent c, double value)
{
    if (config_.spec_mode == SpeculationMode::kSpecCounters)
        spec_.add(c, value);
    else
        cycles_[c] += value;
}

double
CpiAccountant::usefulFraction(std::uint32_t n_correct, std::uint32_t n_wrong)
{
    // In the hardware-realistic modes wrong-path uops are indistinguishable
    // from correct-path ones at dispatch/issue time, so they count toward
    // the useful fraction; the surplus is later reclaimed (§III-B).
    const std::uint32_t n = config_.spec_mode == SpeculationMode::kOracle
                                ? n_correct
                                : n_correct + n_wrong;
    double f = static_cast<double>(n) /
                   static_cast<double>(config_.effective_width) +
               carry_;
    if (f > 1.0) {
        // Wider-stage carry-over (§III-A): clamp to 1 and transfer the
        // excess to the next cycle.
        carry_ = f - 1.0;
        f = 1.0;
    } else {
        carry_ = 0.0;
    }
    return f;
}

void
CpiAccountant::attributeFrontend(FrontendReason reason, double value)
{
    switch (reason) {
      case FrontendReason::kIcache:
        add(CpiComponent::kIcache, value);
        break;
      case FrontendReason::kBpred:
        add(CpiComponent::kBpred, value);
        break;
      case FrontendReason::kMicrocode:
        add(CpiComponent::kMicrocode, value);
        break;
      case FrontendReason::kNone:
      case FrontendReason::kDrain:
        add(CpiComponent::kOther, value);
        break;
    }
}

void
CpiAccountant::attributeBackend(BackendBlame blame, double value)
{
    switch (blame) {
      case BackendBlame::kDcache:
        add(CpiComponent::kDcache, value);
        break;
      case BackendBlame::kAluLat:
        add(CpiComponent::kAluLat, value);
        break;
      case BackendBlame::kDepend:
      case BackendBlame::kNone:
        add(CpiComponent::kDepend, value);
        break;
    }
}

void
CpiAccountant::tickDispatch(const CycleState &s, double rem)
{
    const bool fe_empty = config_.spec_mode == SpeculationMode::kOracle
                              ? !s.fe_has_correct
                              : !s.fe_has_any;
    // Table II (dispatch): frontend-empty first, then ROB/RS full, then
    // the residual partial-dispatch cases.
    if (fe_empty) {
        attributeFrontend(s.fe_reason, rem);
    } else if (s.backend_full) {
        attributeBackend(s.head_blame, rem);
    } else {
        // The frontend delivered some but fewer than W uops: the ongoing
        // frontend condition is the root cause.
        attributeFrontend(s.fe_reason, rem);
    }
}

void
CpiAccountant::tickIssue(const CycleState &s, double rem)
{
    const bool rs_empty = config_.spec_mode == SpeculationMode::kOracle
                              ? s.rs_empty_correct
                              : s.rs_empty_any;
    if (rs_empty) {
        if (s.backend_full) {
            // RS drained while the ROB is full (e.g., a long Dcache miss
            // with all independent work already issued): a backend stall,
            // blamed through the ROB head like the other stages.
            attributeBackend(s.head_blame, rem);
        } else {
            attributeFrontend(s.fe_reason, rem);
        }
    } else if (s.issue_blame != BackendBlame::kNone) {
        // Table II (issue): blame the producer of the first non-ready
        // instruction.
        attributeBackend(s.issue_blame, rem);
    } else if (s.ready_unissued) {
        // Ready instructions existed but structural limits (ports,
        // load-store conflicts) blocked them: the issue-stage-only
        // "Other" component (§V-A).
        add(CpiComponent::kOther, rem);
    } else {
        add(CpiComponent::kOther, rem);
    }
}

void
CpiAccountant::tickCommit(const CycleState &s, double rem)
{
    const bool rob_empty = config_.spec_mode == SpeculationMode::kOracle
                               ? s.rob_empty_correct
                               : s.rob_empty_any;
    if (rob_empty) {
        attributeFrontend(s.fe_reason, rem);
    } else if (s.head_incomplete) {
        attributeBackend(s.head_blame, rem);
    } else {
        add(CpiComponent::kOther, rem);
    }
}

void
CpiAccountant::tick(const CycleState &s)
{
    if (finalized_) {
        throw StackscopeError(ErrorCategory::kInternal,
                              "CpiAccountant::tick() after finalize()");
    }
    if (s.unsched) {
        add(CpiComponent::kUnsched, 1.0);
        return;
    }

    std::uint32_t n = 0;
    std::uint32_t n_wrong = 0;
    switch (config_.stage) {
      case Stage::kDispatch:
        n = s.n_dispatch;
        n_wrong = s.n_dispatch_wrong;
        break;
      case Stage::kIssue:
        n = s.n_issue;
        n_wrong = s.n_issue_wrong;
        break;
      case Stage::kCommit:
        n = s.n_commit;
        n_wrong = 0;  // wrong-path uops never commit
        break;
      case Stage::kCount:
        throw StackscopeError(ErrorCategory::kInternal,
                              "CpiAccountant configured with Stage::kCount");
    }

    const double f = usefulFraction(n, n_wrong);
    add(CpiComponent::kBase, f);
    if (f >= 1.0)
        return;
    const double rem = 1.0 - f;

    switch (config_.stage) {
      case Stage::kDispatch:
        tickDispatch(s, rem);
        break;
      case Stage::kIssue:
        tickIssue(s, rem);
        break;
      case Stage::kCommit:
        tickCommit(s, rem);
        break;
      case Stage::kCount:
        break;
    }
}

void
CpiAccountant::onBranchFetched(SeqNum seq)
{
    if (config_.spec_mode == SpeculationMode::kSpecCounters)
        spec_.onBranchFetched(seq);
}

void
CpiAccountant::onBranchResolved(SeqNum seq, bool mispredicted)
{
    if (config_.spec_mode == SpeculationMode::kSpecCounters)
        spec_.onBranchResolved(seq, mispredicted);
}

void
CpiAccountant::finalize()
{
    if (finalized_)
        return;
    if (config_.spec_mode == SpeculationMode::kSpecCounters) {
        spec_.finalize();
        cycles_ = spec_.committed();
    }
    finalized_ = true;
}

void
CpiAccountant::applySimpleFixup(double commit_base)
{
    applySimpleSpeculationFixup(cycles_, commit_base);
}

const CpiStack &
CpiAccountant::cycles() const
{
    if (config_.spec_mode == SpeculationMode::kSpecCounters && !finalized_) {
        throw StackscopeError(
            ErrorCategory::kInternal,
            "spec-counter stacks are undefined before finalize()")
            .withContext("stage", std::string(toString(config_.stage)));
    }
    return cycles_;
}

CpiStack
CpiAccountant::cpi(std::uint64_t instructions) const
{
    if (instructions == 0)
        return CpiStack{};
    return cycles().scaled(1.0 / static_cast<double>(instructions));
}

}  // namespace stackscope::stacks
