#include "stacks/cpi_accountant.hpp"

#include <string>

#include "common/error.hpp"

namespace stackscope::stacks {

CpiAccountant::CpiAccountant(const CpiAccountantConfig &config)
    : config_(config)
{
    if (config_.effective_width == 0) {
        throw StackscopeError(ErrorCategory::kConfig,
                              "CPI accountant needs an accounting width "
                              ">= 1")
            .withContext("stage", std::string(toString(config_.stage)));
    }
    buildStallTable();
}

void
CpiAccountant::add(CpiComponent c, double value)
{
    if (config_.spec_mode == SpeculationMode::kSpecCounters)
        spec_.add(c, value);
    else
        cycles_[c] += value;
}

double
CpiAccountant::usefulFraction(std::uint32_t n_correct, std::uint32_t n_wrong)
{
    // In the hardware-realistic modes wrong-path uops are indistinguishable
    // from correct-path ones at dispatch/issue time, so they count toward
    // the useful fraction; the surplus is later reclaimed (§III-B).
    const std::uint32_t n = config_.spec_mode == SpeculationMode::kOracle
                                ? n_correct
                                : n_correct + n_wrong;
    double f = static_cast<double>(n) /
                   static_cast<double>(config_.effective_width) +
               carry_;
    if (f > 1.0) {
        // Wider-stage carry-over (§III-A): clamp to 1 and transfer the
        // excess to the next cycle.
        carry_ = f - 1.0;
        f = 1.0;
    } else {
        carry_ = 0.0;
    }
    return f;
}

CpiComponent
CpiAccountant::frontendComponent(FrontendReason reason)
{
    switch (reason) {
      case FrontendReason::kIcache:
        return CpiComponent::kIcache;
      case FrontendReason::kBpred:
        return CpiComponent::kBpred;
      case FrontendReason::kMicrocode:
        return CpiComponent::kMicrocode;
      case FrontendReason::kNone:
      case FrontendReason::kDrain:
        break;
    }
    return CpiComponent::kOther;
}

CpiComponent
CpiAccountant::backendComponent(BackendBlame blame)
{
    switch (blame) {
      case BackendBlame::kDcache:
        return CpiComponent::kDcache;
      case BackendBlame::kAluLat:
        return CpiComponent::kAluLat;
      case BackendBlame::kDepend:
      case BackendBlame::kNone:
        break;
    }
    return CpiComponent::kDepend;
}

CpiComponent
CpiAccountant::classifyDispatch(bool fe_empty, bool backend_full,
                                FrontendReason fe_reason,
                                BackendBlame head_blame)
{
    // Table II (dispatch): frontend-empty first, then ROB/RS full, then
    // the residual partial-dispatch cases (the frontend delivered some
    // but fewer than W uops: the ongoing frontend condition is the root
    // cause).
    if (fe_empty)
        return frontendComponent(fe_reason);
    if (backend_full)
        return backendComponent(head_blame);
    return frontendComponent(fe_reason);
}

CpiComponent
CpiAccountant::classifyIssue(bool rs_empty, bool backend_full,
                             FrontendReason fe_reason,
                             BackendBlame head_blame,
                             BackendBlame issue_blame)
{
    if (rs_empty) {
        // RS drained while the ROB is full (e.g., a long Dcache miss
        // with all independent work already issued): a backend stall,
        // blamed through the ROB head like the other stages.
        if (backend_full)
            return backendComponent(head_blame);
        return frontendComponent(fe_reason);
    }
    // Table II (issue): blame the producer of the first non-ready
    // instruction; ready-but-unissued structural limits (ports,
    // load-store conflicts) fall through to the issue-stage-only
    // "Other" component (§V-A).
    if (issue_blame != BackendBlame::kNone)
        return backendComponent(issue_blame);
    return CpiComponent::kOther;
}

CpiComponent
CpiAccountant::classifyCommit(bool rob_empty, bool head_incomplete,
                              FrontendReason fe_reason,
                              BackendBlame head_blame)
{
    if (rob_empty)
        return frontendComponent(fe_reason);
    if (head_incomplete)
        return backendComponent(head_blame);
    return CpiComponent::kOther;
}

void
CpiAccountant::buildStallTable()
{
    namespace rf = record_flags;
    // Resolve once which packed flag answers "stage empty" for this
    // stage and speculation mode; stallKey() then works on any record.
    const bool oracle = config_.spec_mode == SpeculationMode::kOracle;
    switch (config_.stage) {
      case Stage::kDispatch:
        empty_mask_ = oracle ? rf::kFeHasCorrect : rf::kFeHasAny;
        empty_inverted_ = true;  // flag says "has", emptiness is its absence
        break;
      case Stage::kIssue:
        empty_mask_ = oracle ? rf::kRsEmptyCorrect : rf::kRsEmptyAny;
        empty_inverted_ = false;
        break;
      case Stage::kCommit:
        empty_mask_ = oracle ? rf::kRobEmptyCorrect : rf::kRobEmptyAny;
        empty_inverted_ = false;
        break;
      case Stage::kCount:
        throw StackscopeError(ErrorCategory::kInternal,
                              "CpiAccountant configured with Stage::kCount");
    }

    // Enumerate every stall key through the same classify functions the
    // per-cycle reference path uses, so the table cannot drift from the
    // branch logic it replaces.
    for (std::size_t key = 0; key < kStallTableSize; ++key) {
        const bool stage_empty = key & 0x1;
        const bool backend_full = key & 0x2;
        const bool head_incomplete = key & 0x4;
        const unsigned fe_val = (key >> 4) & 0x7;
        const auto head_blame = static_cast<BackendBlame>((key >> 7) & 0x3);
        const auto issue_blame = static_cast<BackendBlame>((key >> 9) & 0x3);
        CpiComponent c = CpiComponent::kOther;
        if (fe_val <= static_cast<unsigned>(FrontendReason::kDrain)) {
            const auto fe_reason = static_cast<FrontendReason>(fe_val);
            switch (config_.stage) {
              case Stage::kDispatch:
                c = classifyDispatch(stage_empty, backend_full, fe_reason,
                                     head_blame);
                break;
              case Stage::kIssue:
                c = classifyIssue(stage_empty, backend_full, fe_reason,
                                  head_blame, issue_blame);
                break;
              case Stage::kCommit:
                c = classifyCommit(stage_empty, head_incomplete, fe_reason,
                                   head_blame);
                break;
              case Stage::kCount:
                break;
            }
        }
        stall_table_[key] = static_cast<std::uint8_t>(c);
    }
}

std::size_t
CpiAccountant::stallKey(std::uint32_t flags) const
{
    namespace rf = record_flags;
    const bool empty = ((flags & empty_mask_) != 0) != empty_inverted_;
    return (empty ? 0x1u : 0u) |
           ((flags & rf::kBackendFull) ? 0x2u : 0u) |
           ((flags & rf::kHeadIncomplete) ? 0x4u : 0u) |
           ((flags & rf::kReadyUnissued) ? 0x8u : 0u) |
           (((flags >> rf::kFeReasonShift) & rf::kFeReasonMask) << 4) |
           (((flags >> rf::kHeadBlameShift) & rf::kBlameMask) << 7) |
           (((flags >> rf::kIssueBlameShift) & rf::kBlameMask) << 9);
}

void
CpiAccountant::tick(const CycleState &s)
{
    if (finalized_) {
        throw StackscopeError(ErrorCategory::kInternal,
                              "CpiAccountant::tick() after finalize()");
    }
    if (s.unsched) {
        add(CpiComponent::kUnsched, 1.0);
        return;
    }

    std::uint32_t n = 0;
    std::uint32_t n_wrong = 0;
    const bool oracle = config_.spec_mode == SpeculationMode::kOracle;
    bool stage_empty = false;
    switch (config_.stage) {
      case Stage::kDispatch:
        n = s.n_dispatch;
        n_wrong = s.n_dispatch_wrong;
        stage_empty = oracle ? !s.fe_has_correct : !s.fe_has_any;
        break;
      case Stage::kIssue:
        n = s.n_issue;
        n_wrong = s.n_issue_wrong;
        stage_empty = oracle ? s.rs_empty_correct : s.rs_empty_any;
        break;
      case Stage::kCommit:
        n = s.n_commit;
        n_wrong = 0;  // wrong-path uops never commit
        stage_empty = oracle ? s.rob_empty_correct : s.rob_empty_any;
        break;
      case Stage::kCount:
        throw StackscopeError(ErrorCategory::kInternal,
                              "CpiAccountant configured with Stage::kCount");
    }

    const double f = usefulFraction(n, n_wrong);
    add(CpiComponent::kBase, f);
    if (f >= 1.0)
        return;
    const double rem = 1.0 - f;

    switch (config_.stage) {
      case Stage::kDispatch:
        add(classifyDispatch(stage_empty, s.backend_full, s.fe_reason,
                             s.head_blame),
            rem);
        break;
      case Stage::kIssue:
        add(classifyIssue(stage_empty, s.backend_full, s.fe_reason,
                          s.head_blame, s.issue_blame),
            rem);
        break;
      case Stage::kCommit:
        add(classifyCommit(stage_empty, s.head_incomplete, s.fe_reason,
                           s.head_blame),
            rem);
        break;
      case Stage::kCount:
        break;
    }
}

void
CpiAccountant::tickBatch(const CycleRecord *records, std::size_t count)
{
    if (finalized_) {
        throw StackscopeError(ErrorCategory::kInternal,
                              "CpiAccountant::tickBatch() after finalize()");
    }
    const Stage stage = config_.stage;
    for (std::size_t i = 0; i < count; ++i) {
        const CycleRecord &r = records[i];
        if (r.flags & record_flags::kUnsched) {
            add(CpiComponent::kUnsched, static_cast<double>(r.repeat));
            continue;
        }

        std::uint32_t n = 0;
        std::uint32_t n_wrong = 0;
        switch (stage) {
          case Stage::kDispatch:
            n = r.n_dispatch;
            n_wrong = r.n_dispatch_wrong;
            break;
          case Stage::kIssue:
            n = r.n_issue;
            n_wrong = r.n_issue_wrong;
            break;
          case Stage::kCommit:
            n = r.n_commit;
            break;
          case Stage::kCount:
            break;
        }

        const auto comp =
            static_cast<CpiComponent>(stall_table_[stallKey(r.flags)]);

        // The first cycle of the span — and any further cycles while the
        // §III-A carry is still draining — replay the reference per-cycle
        // arithmetic exactly; the remaining idle repeats all contribute
        // 1.0 to the same component and fold into one add.
        std::uint32_t left = r.repeat;
        do {
            const double f = usefulFraction(n, n_wrong);
            add(CpiComponent::kBase, f);
            if (f < 1.0)
                add(comp, 1.0 - f);
            --left;
        } while (left > 0 && (carry_ != 0.0 || (n | n_wrong) != 0));
        if (left > 0)
            add(comp, static_cast<double>(left));
    }
}

void
CpiAccountant::onBranchFetched(SeqNum seq)
{
    if (config_.spec_mode == SpeculationMode::kSpecCounters)
        spec_.onBranchFetched(seq);
}

void
CpiAccountant::onBranchResolved(SeqNum seq, bool mispredicted)
{
    if (config_.spec_mode == SpeculationMode::kSpecCounters)
        spec_.onBranchResolved(seq, mispredicted);
}

void
CpiAccountant::finalize()
{
    if (finalized_)
        return;
    if (config_.spec_mode == SpeculationMode::kSpecCounters) {
        spec_.finalize();
        cycles_ = spec_.committed();
    }
    finalized_ = true;
}

void
CpiAccountant::applySimpleFixup(double commit_base)
{
    applySimpleSpeculationFixup(cycles_, commit_base);
}

const CpiStack &
CpiAccountant::cycles() const
{
    if (config_.spec_mode == SpeculationMode::kSpecCounters && !finalized_) {
        throw StackscopeError(
            ErrorCategory::kInternal,
            "spec-counter stacks are undefined before finalize()")
            .withContext("stage", std::string(toString(config_.stage)));
    }
    return cycles_;
}

CpiStack
CpiAccountant::cpi(std::uint64_t instructions) const
{
    if (instructions == 0)
        return CpiStack{};
    return cycles().scaled(1.0 / static_cast<double>(instructions));
}

}  // namespace stackscope::stacks
