// StackT is header-only; see stack.hpp.
#include "stacks/stack.hpp"
