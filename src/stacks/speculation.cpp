#include "stacks/speculation.hpp"

#include <algorithm>

namespace stackscope::stacks {

void
SpeculativeCounters::onBranchFetched(SeqNum seq)
{
    epochs_.push_back(Epoch{seq, CpiStack{}});
}

void
SpeculativeCounters::onBranchResolved(SeqNum seq, bool mispredicted)
{
    auto it = std::find_if(epochs_.begin(), epochs_.end(),
                           [&](const Epoch &e) { return e.branch_seq == seq; });
    if (it == epochs_.end())
        return;  // already discarded by an older misprediction

    if (mispredicted) {
        // Everything accumulated since this branch was fetched is
        // wrong-path work: credit it all to the bpred component.
        double squashed = 0.0;
        for (auto e = it; e != epochs_.end(); ++e)
            squashed += e->pending.sum();
        committed_[CpiComponent::kBpred] += squashed;
        epochs_.erase(it, epochs_.end());
    } else {
        // Proven correct: merge into the parent epoch (or the committed
        // counters if this was the oldest in-flight branch).
        if (it == epochs_.begin()) {
            committed_ += it->pending;
        } else {
            auto parent = std::prev(it);
            parent->pending += it->pending;
        }
        epochs_.erase(it);
    }
}

void
SpeculativeCounters::add(CpiComponent c, double value)
{
    if (epochs_.empty())
        committed_[c] += value;
    else
        epochs_.back().pending[c] += value;
}

void
SpeculativeCounters::finalize()
{
    for (Epoch &e : epochs_)
        committed_ += e.pending;
    epochs_.clear();
}

void
applySimpleSpeculationFixup(CpiStack &stack, double commit_base)
{
    const double surplus = stack[CpiComponent::kBase] - commit_base;
    if (surplus > 0.0) {
        stack[CpiComponent::kBase] -= surplus;
        stack[CpiComponent::kBpred] += surplus;
    }
}

}  // namespace stackscope::stacks
