#include "stacks/components.hpp"

namespace stackscope::stacks {

std::string_view
componentName(CpiComponent c)
{
    switch (c) {
      case CpiComponent::kBase: return "Base";
      case CpiComponent::kIcache: return "Icache";
      case CpiComponent::kBpred: return "Bpred";
      case CpiComponent::kDcache: return "Dcache";
      case CpiComponent::kAluLat: return "ALU lat";
      case CpiComponent::kDepend: return "Depend";
      case CpiComponent::kMicrocode: return "Microcode";
      case CpiComponent::kOther: return "Other";
      case CpiComponent::kUnsched: return "Unsched";
      case CpiComponent::kCount: break;
    }
    return "?";
}

std::string_view
componentName(FlopsComponent c)
{
    switch (c) {
      case FlopsComponent::kBase: return "Base";
      case FlopsComponent::kNonFma: return "Non-FMA";
      case FlopsComponent::kMask: return "Mask";
      case FlopsComponent::kFrontend: return "Frontend";
      case FlopsComponent::kNonVfp: return "Non-VFP";
      case FlopsComponent::kMem: return "Memory";
      case FlopsComponent::kDepend: return "Depend";
      case FlopsComponent::kUnsched: return "Unsched";
      case FlopsComponent::kCount: break;
    }
    return "?";
}

std::string_view
toString(Stage s)
{
    switch (s) {
      case Stage::kDispatch: return "dispatch";
      case Stage::kIssue: return "issue";
      case Stage::kCommit: return "commit";
      case Stage::kCount: break;
    }
    return "?";
}

}  // namespace stackscope::stacks
