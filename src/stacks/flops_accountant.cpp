#include "stacks/flops_accountant.hpp"

#include "common/error.hpp"

namespace stackscope::stacks {

FlopsAccountant::FlopsAccountant(const FlopsAccountantConfig &config)
    : config_(config)
{
    if (config_.vpu_count == 0 || config_.vec_lanes == 0) {
        throw StackscopeError(ErrorCategory::kConfig,
                              "FLOPS accountant needs vpu_count >= 1 and "
                              "vec_lanes >= 1");
    }
}

void
FlopsAccountant::tick(const CycleState &s)
{
    if (s.unsched) {
        cycles_[FlopsComponent::kUnsched] += 1.0;
        return;
    }

    const double k = config_.vpu_count;
    const double v = config_.vec_lanes;
    const double peak = 2.0 * k * v;

    // Table III line 1: f = (sum of a_i * m_i) / (2 k v).
    const double f = s.vfp_lane_ops / peak;
    cycles_[FlopsComponent::kBase] += f;
    if (f >= 1.0)
        return;

    // Lines 4-7: per-instruction losses from non-FMA ops and masking.
    // Per issued VFP instruction, f_i + nonfma_i + mask_i = 1/k exactly,
    // so base+nonfma+mask account for n/k of this cycle.
    cycles_[FlopsComponent::kNonFma] += s.vfp_nonfma_loss / peak;
    cycles_[FlopsComponent::kMask] += s.vfp_mask_loss / (k * v);

    // Lines 8-18: the (k - n)/k remainder is attributed to the reason no
    // further VFP instruction issued.
    if (s.n_vfp < config_.vpu_count) {
        const double rem = (k - static_cast<double>(s.n_vfp)) / k;
        if (!s.vfp_in_rs) {
            cycles_[FlopsComponent::kFrontend] += rem;
        } else if (s.nonvfp_on_vpu > 0) {
            cycles_[FlopsComponent::kNonVfp] += rem;
        } else if (s.vfp_blame == VfpBlame::kMem) {
            cycles_[FlopsComponent::kMem] += rem;
        } else {
            cycles_[FlopsComponent::kDepend] += rem;
        }
    }
}

void
FlopsAccountant::tickBatch(const CycleRecord *records, std::size_t count)
{
    const double k = config_.vpu_count;
    const double v = config_.vec_lanes;
    const double peak = 2.0 * k * v;

    for (std::size_t i = 0; i < count; ++i) {
        const CycleRecord &r = records[i];
        const double rep = static_cast<double>(r.repeat);
        if (r.flags & record_flags::kUnsched) {
            cycles_[FlopsComponent::kUnsched] += rep;
            continue;
        }

        const double f = r.vfp_lane_ops / peak;
        cycles_[FlopsComponent::kBase] += f * rep;
        if (f >= 1.0)
            continue;

        cycles_[FlopsComponent::kNonFma] += (r.vfp_nonfma_loss / peak) * rep;
        cycles_[FlopsComponent::kMask] += (r.vfp_mask_loss / (k * v)) * rep;

        if (r.n_vfp < config_.vpu_count) {
            const double rem = (k - static_cast<double>(r.n_vfp)) / k;
            FlopsComponent c;
            if (!(r.flags & record_flags::kVfpInRs))
                c = FlopsComponent::kFrontend;
            else if (r.nonvfp_on_vpu > 0)
                c = FlopsComponent::kNonVfp;
            else if (r.vfpBlame() == VfpBlame::kMem)
                c = FlopsComponent::kMem;
            else
                c = FlopsComponent::kDepend;
            cycles_[c] += rem * rep;
        }
    }
}

FlopsStack
FlopsAccountant::asFlops(std::uint64_t total_cycles, double freq_hz) const
{
    if (total_cycles == 0)
        return FlopsStack{};
    const double factor = freq_hz * peakFlopsPerCycle() /
                          static_cast<double>(total_cycles);
    return cycles_.scaled(factor);
}

double
FlopsAccountant::achievedFlops(std::uint64_t total_cycles,
                               double freq_hz) const
{
    return asFlops(total_cycles, freq_hz)[FlopsComponent::kBase];
}

}  // namespace stackscope::stacks
