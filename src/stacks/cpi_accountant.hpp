/**
 * @file
 * Per-cycle CPI stack accounting at the dispatch, issue and commit stages:
 * a faithful implementation of the paper's Table II algorithms, extended
 * with the microcode/other/unsched components and the width-normalization
 * rule of §III-A (W = minimum stage width; fractions above 1 carry over to
 * the next cycle).
 */

#ifndef STACKSCOPE_STACKS_CPI_ACCOUNTANT_HPP
#define STACKSCOPE_STACKS_CPI_ACCOUNTANT_HPP

#include <cstdint>

#include "stacks/cycle_state.hpp"
#include "stacks/speculation.hpp"
#include "stacks/stack.hpp"

namespace stackscope::stacks {

/** Configuration of one per-stage accountant. */
struct CpiAccountantConfig
{
    Stage stage = Stage::kDispatch;
    /**
     * Effective accounting width W: the minimum width over all pipeline
     * stages (§III-A). Using the minimum everywhere keeps the base
     * component equal across stacks and models wider stages through the
     * carry-over rule.
     */
    unsigned effective_width = 4;
    SpeculationMode spec_mode = SpeculationMode::kOracle;
};

/**
 * One CPI stack, accumulated cycle by cycle at a fixed pipeline stage.
 */
class CpiAccountant
{
  public:
    explicit CpiAccountant(const CpiAccountantConfig &config);

    /** Account one cycle. */
    void tick(const CycleState &state);

    /** @name Branch events (used by SpeculationMode::kSpecCounters) @{ */
    void onBranchFetched(SeqNum seq);
    void onBranchResolved(SeqNum seq, bool mispredicted);
    /** @} */

    /** Flush speculative buffers; call once after the last tick. */
    void finalize();

    /**
     * kSimple-mode post-processing (§III-B / Yasin): move this stack's
     * base surplus over the commit stack's base into the bpred component.
     */
    void applySimpleFixup(double commit_base);

    /**
     * Per-component cycle counts. In kSpecCounters mode, valid only after
     * finalize().
     */
    const CpiStack &cycles() const;

    /** The stack expressed in CPI units (cycles / @p instructions). */
    CpiStack cpi(std::uint64_t instructions) const;

    Stage stage() const { return config_.stage; }
    SpeculationMode speculationMode() const { return config_.spec_mode; }

    /** Total accounted cycles (sum of all components). */
    double accountedCycles() const { return cycles().sum(); }

  private:
    void add(CpiComponent c, double value);
    double usefulFraction(std::uint32_t n_correct, std::uint32_t n_wrong);
    void attributeFrontend(FrontendReason reason, double value);
    void attributeBackend(BackendBlame blame, double value);

    void tickDispatch(const CycleState &s, double rem);
    void tickIssue(const CycleState &s, double rem);
    void tickCommit(const CycleState &s, double rem);

    CpiAccountantConfig config_;
    CpiStack cycles_;
    SpeculativeCounters spec_;
    double carry_ = 0.0;
    bool finalized_ = false;
};

}  // namespace stackscope::stacks

#endif  // STACKSCOPE_STACKS_CPI_ACCOUNTANT_HPP
