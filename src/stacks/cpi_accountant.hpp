/**
 * @file
 * Per-cycle CPI stack accounting at the dispatch, issue and commit stages:
 * a faithful implementation of the paper's Table II algorithms, extended
 * with the microcode/other/unsched components and the width-normalization
 * rule of §III-A (W = minimum stage width; fractions above 1 carry over to
 * the next cycle).
 *
 * Two consumption paths share one classification: tick() takes a
 * CycleState per cycle (the reference path), tickBatch() takes a span of
 * packed CycleRecords and resolves each stall through a lookup table that
 * the constructor builds by enumerating every flag combination through
 * the same classify functions tick() uses — equivalence by construction,
 * checked by the golden suite (tests/core/batched_reference_test.cpp).
 */

#ifndef STACKSCOPE_STACKS_CPI_ACCOUNTANT_HPP
#define STACKSCOPE_STACKS_CPI_ACCOUNTANT_HPP

#include <array>
#include <cstddef>
#include <cstdint>

#include "stacks/cycle_record.hpp"
#include "stacks/cycle_state.hpp"
#include "stacks/speculation.hpp"
#include "stacks/stack.hpp"

namespace stackscope::stacks {

/** Configuration of one per-stage accountant. */
struct CpiAccountantConfig
{
    Stage stage = Stage::kDispatch;
    /**
     * Effective accounting width W: the minimum width over all pipeline
     * stages (§III-A). Using the minimum everywhere keeps the base
     * component equal across stacks and models wider stages through the
     * carry-over rule.
     */
    unsigned effective_width = 4;
    SpeculationMode spec_mode = SpeculationMode::kOracle;
};

/**
 * One CPI stack, accumulated cycle by cycle at a fixed pipeline stage.
 */
class CpiAccountant
{
  public:
    explicit CpiAccountant(const CpiAccountantConfig &config);

    /** Account one cycle. */
    void tick(const CycleState &state);

    /**
     * Account a span of packed cycles. Equivalent to unpacking each
     * record and calling tick() `repeat` times — bitwise so for
     * repeat == 1 records; repeated idle cycles fold their attribution
     * into one multiply (summation-order change bounded by ~1e-9 of the
     * aggregate).
     */
    void tickBatch(const CycleRecord *records, std::size_t count);

    /** @name Branch events (used by SpeculationMode::kSpecCounters) @{ */
    void onBranchFetched(SeqNum seq);
    void onBranchResolved(SeqNum seq, bool mispredicted);
    /** @} */

    /** Flush speculative buffers; call once after the last tick. */
    void finalize();

    /**
     * kSimple-mode post-processing (§III-B / Yasin): move this stack's
     * base surplus over the commit stack's base into the bpred component.
     */
    void applySimpleFixup(double commit_base);

    /**
     * Per-component cycle counts. In kSpecCounters mode, valid only after
     * finalize().
     */
    const CpiStack &cycles() const;

    /** The stack expressed in CPI units (cycles / @p instructions). */
    CpiStack cpi(std::uint64_t instructions) const;

    Stage stage() const { return config_.stage; }
    SpeculationMode speculationMode() const { return config_.spec_mode; }

    /** Total accounted cycles (sum of all components). */
    double accountedCycles() const { return cycles().sum(); }

  private:
    /**
     * Stall-table key: 11 bits of packed stall state — stage-emptiness
     * (already resolved against the speculation mode), backend_full,
     * head_incomplete, ready_unissued, fe_reason, head_blame,
     * issue_blame.
     */
    static constexpr std::size_t kStallTableSize = 1u << 11;

    void add(CpiComponent c, double value);
    double usefulFraction(std::uint32_t n_correct, std::uint32_t n_wrong);

    /** @name Pure Table II classification, shared by both paths @{ */
    static CpiComponent frontendComponent(FrontendReason reason);
    static CpiComponent backendComponent(BackendBlame blame);
    static CpiComponent classifyDispatch(bool fe_empty, bool backend_full,
                                         FrontendReason fe_reason,
                                         BackendBlame head_blame);
    static CpiComponent classifyIssue(bool rs_empty, bool backend_full,
                                      FrontendReason fe_reason,
                                      BackendBlame head_blame,
                                      BackendBlame issue_blame);
    static CpiComponent classifyCommit(bool rob_empty, bool head_incomplete,
                                       FrontendReason fe_reason,
                                       BackendBlame head_blame);
    /** @} */

    void buildStallTable();
    std::size_t stallKey(std::uint32_t flags) const;

    CpiAccountantConfig config_;
    CpiStack cycles_;
    SpeculativeCounters spec_;
    double carry_ = 0.0;
    bool finalized_ = false;

    /** Flag bit that answers "is this stage empty?" under config_. */
    std::uint32_t empty_mask_ = 0;
    bool empty_inverted_ = false;
    std::array<std::uint8_t, kStallTableSize> stall_table_{};
};

}  // namespace stackscope::stacks

#endif  // STACKSCOPE_STACKS_CPI_ACCOUNTANT_HPP
