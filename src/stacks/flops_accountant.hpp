/**
 * @file
 * FLOPS stack accounting (paper Table III and Equation 1).
 *
 * A FLOPS stack is an issue-stage stack restricted to vector floating
 * point work. Peak per-cycle work is M = 2 * k * v flops (k vector units,
 * v lanes, factor 2 for FMA); each cycle is decomposed into the fraction
 * of peak achieved (base) and the reasons the rest was lost: non-FMA
 * instructions, masked lanes, no VFP instructions available (frontend),
 * vector units used by non-FP ops, and VFP work waiting on memory or on
 * other producers.
 */

#ifndef STACKSCOPE_STACKS_FLOPS_ACCOUNTANT_HPP
#define STACKSCOPE_STACKS_FLOPS_ACCOUNTANT_HPP

#include <cstddef>
#include <cstdint>

#include "stacks/cycle_record.hpp"
#include "stacks/cycle_state.hpp"
#include "stacks/stack.hpp"

namespace stackscope::stacks {

/** Machine parameters of the FLOPS stack. */
struct FlopsAccountantConfig
{
    unsigned vpu_count = 2;  ///< k: vector floating-point units
    unsigned vec_lanes = 16; ///< v: SP elements per vector
};

/**
 * Accumulates a FLOPS stack cycle by cycle (Table III).
 *
 * Invariant: the per-cycle contributions of all components sum to exactly
 * 1, so cycles().sum() equals the number of accounted cycles.
 */
class FlopsAccountant
{
  public:
    explicit FlopsAccountant(const FlopsAccountantConfig &config);

    /** Account one cycle. */
    void tick(const CycleState &state);

    /**
     * Account a span of packed cycles: per-record contributions are
     * computed once and scaled by the run length (Table III has no
     * cross-cycle carry, so repeats are exactly linear; bitwise equal to
     * tick() for repeat == 1 records).
     */
    void tickBatch(const CycleRecord *records, std::size_t count);

    /** Per-component cycle counts. */
    const FlopsStack &cycles() const { return cycles_; }

    /** Peak flops per cycle: M = 2 * k * v. */
    double peakFlopsPerCycle() const
    {
        return 2.0 * config_.vpu_count * config_.vec_lanes;
    }

    /**
     * Convert to absolute FLOPS units (Equation 1): each component is
     * multiplied by freq_hz * M / total_cycles, so the stack height is
     * the machine peak and the base component is the achieved FLOPS.
     */
    FlopsStack asFlops(std::uint64_t total_cycles, double freq_hz) const;

    /** Achieved FLOPS (the base component of asFlops()). */
    double achievedFlops(std::uint64_t total_cycles, double freq_hz) const;

    const FlopsAccountantConfig &config() const { return config_; }

  private:
    FlopsAccountantConfig config_;
    FlopsStack cycles_;
};

}  // namespace stackscope::stacks

#endif  // STACKSCOPE_STACKS_FLOPS_ACCOUNTANT_HPP
