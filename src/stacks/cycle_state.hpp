/**
 * @file
 * The per-cycle observation record that the core publishes and all
 * accountants consume.
 *
 * This is the key architectural idea behind "easy to collect" (§III / §IV):
 * the accounting algorithms of Tables II and III only need a handful of
 * per-cycle facts about stage occupancy and blocker status. The core fills
 * one CycleState per cycle; the accountants are pure consumers, so the
 * whole mechanism can be attached to any cycle-level simulator.
 */

#ifndef STACKSCOPE_STACKS_CYCLE_STATE_HPP
#define STACKSCOPE_STACKS_CYCLE_STATE_HPP

#include <cstdint>

#include "common/types.hpp"

namespace stackscope::stacks {

/** Why the frontend is not delivering correct-path instructions. */
enum class FrontendReason : std::uint8_t
{
    kNone,       ///< frontend is delivering (or nothing is wrong)
    kIcache,     ///< instruction cache miss outstanding
    kBpred,      ///< fetching wrong path / refilling after a misprediction
    kMicrocode,  ///< decoder occupied by a microcoded instruction
    kDrain,      ///< trace exhausted; pipeline draining
};

/** Which kind of instruction is blamed for a backend stall. */
enum class BackendBlame : std::uint8_t
{
    kNone,
    kDcache,  ///< blocked on a data cache miss
    kAluLat,  ///< blocked on a multi-cycle instruction
    kDepend,  ///< blocked on a single-cycle dependence chain
};

/** Producer blame for the FLOPS stack (Table III lines 14-18). */
enum class VfpBlame : std::uint8_t
{
    kNone,
    kMem,     ///< producer of the oldest waiting VFP op is a load
    kDepend,  ///< producer is a non-load instruction
};

/**
 * Everything the accountants need to know about one core cycle.
 */
struct CycleState
{
    /** @name Dispatch stage @{ */
    std::uint32_t n_dispatch = 0;        ///< correct-path uops dispatched
    std::uint32_t n_dispatch_wrong = 0;  ///< wrong-path uops dispatched
    /** Fetch queue holds correct-path uops ready to dispatch. */
    bool fe_has_correct = false;
    /** Fetch queue holds any uops (wrong path included) ready to dispatch. */
    bool fe_has_any = false;
    FrontendReason fe_reason = FrontendReason::kNone;
    /** Dispatch blocked because the ROB or the RS is full. */
    bool backend_full = false;
    /** @} */

    /** @name ROB head (blame for dispatch-full and commit stalls) @{ */
    bool rob_empty_correct = true;  ///< no correct-path uops in the ROB
    bool rob_empty_any = true;      ///< no uops at all in the ROB
    bool head_incomplete = false;   ///< correct-path head not finished
    BackendBlame head_blame = BackendBlame::kNone;
    /** @} */

    /** @name Issue stage @{ */
    std::uint32_t n_issue = 0;
    std::uint32_t n_issue_wrong = 0;
    bool rs_empty_correct = true;  ///< no correct-path uops waiting in RS
    bool rs_empty_any = true;      ///< no uops at all waiting in RS
    /** Ready uops existed but ports/conflicts prevented issuing them. */
    bool ready_unissued = false;
    /** Blame via the producer of the first non-ready RS entry. */
    BackendBlame issue_blame = BackendBlame::kNone;
    /** @} */

    /** @name Commit stage @{ */
    std::uint32_t n_commit = 0;
    /** @} */

    /** @name Vector FP issue activity (Table III) @{ */
    std::uint32_t n_vfp = 0;        ///< VFP uops issued this cycle
    double vfp_lane_ops = 0.0;      ///< sum over issued VFP of a_i * m_i
    double vfp_nonfma_loss = 0.0;   ///< sum of (2 - a_i) * m_i
    double vfp_mask_loss = 0.0;     ///< sum of (v - m_i)
    bool vfp_in_rs = false;         ///< correct-path VFP waiting in RS
    std::uint32_t nonvfp_on_vpu = 0;  ///< VPU slots used by non-VFP ops
    VfpBlame vfp_blame = VfpBlame::kNone;
    /** @} */

    /** Thread yielded this cycle (synchronization). */
    bool unsched = false;

    /** @name Events for speculative-counter accounting (§III-B) @{ */
    /** A branch entered the pipeline this cycle (count). */
    std::uint32_t branches_fetched = 0;
    /** Sequence numbers are communicated via the accountant interface. */
    /** @} */
};

}  // namespace stackscope::stacks

#endif  // STACKSCOPE_STACKS_CYCLE_STATE_HPP
