/**
 * @file
 * Generic stack container: a fixed vector of per-component values with the
 * arithmetic needed for aggregation, normalization and bound computation.
 */

#ifndef STACKSCOPE_STACKS_STACK_HPP
#define STACKSCOPE_STACKS_STACK_HPP

#include <algorithm>
#include <array>
#include <cstddef>

#include "stacks/components.hpp"

namespace stackscope::stacks {

/**
 * Fixed-size per-component accumulator indexed by a component enum.
 *
 * @tparam E component enum ending in kCount.
 */
template <typename E>
class StackT
{
  public:
    static constexpr std::size_t kSize = static_cast<std::size_t>(E::kCount);

    constexpr StackT() = default;

    double &operator[](E c) { return v_[static_cast<std::size_t>(c)]; }
    double operator[](E c) const { return v_[static_cast<std::size_t>(c)]; }

    /** Sum over all components. */
    double
    sum() const
    {
        double s = 0.0;
        for (double x : v_)
            s += x;
        return s;
    }

    /** Scale every component by @p factor. */
    StackT
    scaled(double factor) const
    {
        StackT out = *this;
        for (double &x : out.v_)
            x *= factor;
        return out;
    }

    /** Normalize so that components sum to 1 (no-op if the sum is 0). */
    StackT
    normalized() const
    {
        const double s = sum();
        return s == 0.0 ? *this : scaled(1.0 / s);
    }

    StackT &
    operator+=(const StackT &o)
    {
        for (std::size_t i = 0; i < kSize; ++i)
            v_[i] += o.v_[i];
        return *this;
    }

    friend StackT
    operator+(StackT a, const StackT &b)
    {
        a += b;
        return a;
    }

    friend StackT
    operator-(StackT a, const StackT &b)
    {
        for (std::size_t i = 0; i < kSize; ++i)
            a.v_[i] -= b.v_[i];
        return a;
    }

    /** Component-wise minimum. */
    static StackT
    min(const StackT &a, const StackT &b)
    {
        StackT out;
        for (std::size_t i = 0; i < kSize; ++i)
            out.v_[i] = std::min(a.v_[i], b.v_[i]);
        return out;
    }

    /** Component-wise maximum. */
    static StackT
    max(const StackT &a, const StackT &b)
    {
        StackT out;
        for (std::size_t i = 0; i < kSize; ++i)
            out.v_[i] = std::max(a.v_[i], b.v_[i]);
        return out;
    }

    /** Iterate (component, value) pairs. */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (std::size_t i = 0; i < kSize; ++i)
            fn(static_cast<E>(i), v_[i]);
    }

  private:
    std::array<double, kSize> v_{};
};

/** A CPI stack (values in cycles or CPI units depending on context). */
using CpiStack = StackT<CpiComponent>;

/** A FLOPS stack (values in cycles or FLOPS units depending on context). */
using FlopsStack = StackT<FlopsComponent>;

}  // namespace stackscope::stacks

#endif  // STACKSCOPE_STACKS_STACK_HPP
