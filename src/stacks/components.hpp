/**
 * @file
 * Component taxonomies of CPI stacks and FLOPS stacks.
 *
 * CPI components follow Table II of the paper (base, Icache, bpred,
 * Dcache, ALU latency, dependences) extended with the Microcode component
 * (Fig. 3(d)), the issue-stage "Other" structural-stall component (§V-A)
 * and the "Unsched" yielded-thread component (Fig. 5).
 *
 * FLOPS components follow Table III.
 */

#ifndef STACKSCOPE_STACKS_COMPONENTS_HPP
#define STACKSCOPE_STACKS_COMPONENTS_HPP

#include <cstddef>
#include <string_view>

namespace stackscope::stacks {

/** CPI stack components. */
enum class CpiComponent : unsigned
{
    kBase,       ///< useful dispatch/issue/commit slots
    kIcache,     ///< instruction cache (and ITLB) misses
    kBpred,      ///< branch mispredictions
    kDcache,     ///< data cache misses
    kAluLat,     ///< multi-cycle instruction latency
    kDepend,     ///< inter-instruction dependences
    kMicrocode,  ///< microcode decoder occupancy
    kOther,      ///< structural stalls (ports, load-store conflicts, drain)
    kUnsched,    ///< thread yielded for synchronization
    kCount,
};

inline constexpr std::size_t kNumCpiComponents =
    static_cast<std::size_t>(CpiComponent::kCount);

/** FLOPS stack components (Table III). */
enum class FlopsComponent : unsigned
{
    kBase,      ///< cycles' worth of peak-rate floating-point work done
    kNonFma,    ///< loss from non-FMA vector FP instructions
    kMask,      ///< loss from masked-out vector lanes
    kFrontend,  ///< no VFP instructions available (incl. non-FP code)
    kNonVfp,    ///< vector units occupied by non-FP vector ops
    kMem,       ///< VFP work waiting on memory loads
    kDepend,    ///< VFP work waiting on other instructions
    kUnsched,   ///< thread yielded for synchronization
    kCount,
};

inline constexpr std::size_t kNumFlopsComponents =
    static_cast<std::size_t>(FlopsComponent::kCount);

/** Human-readable component names (as used in the paper's figures). */
std::string_view componentName(CpiComponent c);
std::string_view componentName(FlopsComponent c);

/** Pipeline stages at which CPI stacks are measured (Table II). */
enum class Stage : unsigned
{
    kDispatch,
    kIssue,
    kCommit,
    kCount,
};

inline constexpr std::size_t kNumStages =
    static_cast<std::size_t>(Stage::kCount);

std::string_view toString(Stage s);

}  // namespace stackscope::stacks

#endif  // STACKSCOPE_STACKS_COMPONENTS_HPP
