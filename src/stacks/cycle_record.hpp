/**
 * @file
 * Packed per-cycle observation record for batched stack accounting.
 *
 * CycleState is the simulator-facing observation contract (a struct of
 * plain fields, easy for any core model to fill). CycleRecord is its wire
 * format inside the hot loop: all booleans and small enums packed into one
 * 32-bit flag word, stage counts narrowed to bytes, plus a run-length
 * field so a span of identical idle cycles is represented — and later
 * accounted — as a single record. CpiAccountant::tickBatch() and
 * FlopsAccountant::tickBatch() consume arrays of these records, replacing
 * one classification-branch cascade per stage per cycle with a table
 * lookup on the flag word (docs/performance.md).
 */

#ifndef STACKSCOPE_STACKS_CYCLE_RECORD_HPP
#define STACKSCOPE_STACKS_CYCLE_RECORD_HPP

#include <cstdint>

#include "stacks/cycle_state.hpp"

namespace stackscope::stacks {

/** Bit layout of CycleRecord::flags. */
namespace record_flags {

inline constexpr std::uint32_t kFeHasCorrect = 1u << 0;
inline constexpr std::uint32_t kFeHasAny = 1u << 1;
inline constexpr std::uint32_t kBackendFull = 1u << 2;
inline constexpr std::uint32_t kRobEmptyCorrect = 1u << 3;
inline constexpr std::uint32_t kRobEmptyAny = 1u << 4;
inline constexpr std::uint32_t kHeadIncomplete = 1u << 5;
inline constexpr std::uint32_t kReadyUnissued = 1u << 6;
inline constexpr std::uint32_t kRsEmptyCorrect = 1u << 7;
inline constexpr std::uint32_t kRsEmptyAny = 1u << 8;
inline constexpr std::uint32_t kVfpInRs = 1u << 9;
inline constexpr std::uint32_t kUnsched = 1u << 10;

inline constexpr unsigned kFeReasonShift = 11;  ///< 3 bits
inline constexpr unsigned kHeadBlameShift = 14; ///< 2 bits
inline constexpr unsigned kIssueBlameShift = 16; ///< 2 bits
inline constexpr unsigned kVfpBlameShift = 18;  ///< 2 bits

inline constexpr std::uint32_t kFeReasonMask = 0x7u;
inline constexpr std::uint32_t kBlameMask = 0x3u;

}  // namespace record_flags

/**
 * One accounted cycle (or a run of identical idle cycles), packed.
 *
 * `repeat` > 1 is only ever produced for *idle* cycles: all stage counts
 * zero and no VFP activity. That restriction is what makes bulk
 * accounting of the run legal — each repeated cycle contributes the same
 * component attribution, and the §III-A carry-over drains within the
 * first few cycles of the span (tickBatch handles that exactly).
 */
struct CycleRecord
{
    std::uint32_t flags = 0;
    std::uint32_t repeat = 1;

    std::uint8_t n_dispatch = 0;
    std::uint8_t n_dispatch_wrong = 0;
    std::uint8_t n_issue = 0;
    std::uint8_t n_issue_wrong = 0;
    std::uint8_t n_commit = 0;
    std::uint8_t n_vfp = 0;
    std::uint8_t nonvfp_on_vpu = 0;

    double vfp_lane_ops = 0.0;
    double vfp_nonfma_loss = 0.0;
    double vfp_mask_loss = 0.0;

    bool unsched() const { return flags & record_flags::kUnsched; }

    FrontendReason
    feReason() const
    {
        return static_cast<FrontendReason>(
            (flags >> record_flags::kFeReasonShift) &
            record_flags::kFeReasonMask);
    }

    BackendBlame
    headBlame() const
    {
        return static_cast<BackendBlame>(
            (flags >> record_flags::kHeadBlameShift) &
            record_flags::kBlameMask);
    }

    BackendBlame
    issueBlame() const
    {
        return static_cast<BackendBlame>(
            (flags >> record_flags::kIssueBlameShift) &
            record_flags::kBlameMask);
    }

    VfpBlame
    vfpBlame() const
    {
        return static_cast<VfpBlame>(
            (flags >> record_flags::kVfpBlameShift) &
            record_flags::kBlameMask);
    }

    /** All stage activity counts zero (mergeable into a repeat run). */
    bool
    idle() const
    {
        return (n_dispatch | n_dispatch_wrong | n_issue | n_issue_wrong |
                n_commit | n_vfp | nonvfp_on_vpu) == 0;
    }
};

/** Pack a CycleState observation into the wire format. */
inline CycleRecord
packCycleState(const CycleState &s)
{
    namespace rf = record_flags;
    CycleRecord r;
    r.flags =
        (s.fe_has_correct ? rf::kFeHasCorrect : 0u) |
        (s.fe_has_any ? rf::kFeHasAny : 0u) |
        (s.backend_full ? rf::kBackendFull : 0u) |
        (s.rob_empty_correct ? rf::kRobEmptyCorrect : 0u) |
        (s.rob_empty_any ? rf::kRobEmptyAny : 0u) |
        (s.head_incomplete ? rf::kHeadIncomplete : 0u) |
        (s.ready_unissued ? rf::kReadyUnissued : 0u) |
        (s.rs_empty_correct ? rf::kRsEmptyCorrect : 0u) |
        (s.rs_empty_any ? rf::kRsEmptyAny : 0u) |
        (s.vfp_in_rs ? rf::kVfpInRs : 0u) |
        (s.unsched ? rf::kUnsched : 0u) |
        (static_cast<std::uint32_t>(s.fe_reason) << rf::kFeReasonShift) |
        (static_cast<std::uint32_t>(s.head_blame) << rf::kHeadBlameShift) |
        (static_cast<std::uint32_t>(s.issue_blame) << rf::kIssueBlameShift) |
        (static_cast<std::uint32_t>(s.vfp_blame) << rf::kVfpBlameShift);
    r.n_dispatch = static_cast<std::uint8_t>(s.n_dispatch);
    r.n_dispatch_wrong = static_cast<std::uint8_t>(s.n_dispatch_wrong);
    r.n_issue = static_cast<std::uint8_t>(s.n_issue);
    r.n_issue_wrong = static_cast<std::uint8_t>(s.n_issue_wrong);
    r.n_commit = static_cast<std::uint8_t>(s.n_commit);
    r.n_vfp = static_cast<std::uint8_t>(s.n_vfp);
    r.nonvfp_on_vpu = static_cast<std::uint8_t>(s.nonvfp_on_vpu);
    r.vfp_lane_ops = s.vfp_lane_ops;
    r.vfp_nonfma_loss = s.vfp_nonfma_loss;
    r.vfp_mask_loss = s.vfp_mask_loss;
    return r;
}

/** Unpack back into the simulator-facing struct (tests, tracing). */
inline CycleState
unpackCycleRecord(const CycleRecord &r)
{
    namespace rf = record_flags;
    CycleState s;
    s.fe_has_correct = r.flags & rf::kFeHasCorrect;
    s.fe_has_any = r.flags & rf::kFeHasAny;
    s.backend_full = r.flags & rf::kBackendFull;
    s.rob_empty_correct = r.flags & rf::kRobEmptyCorrect;
    s.rob_empty_any = r.flags & rf::kRobEmptyAny;
    s.head_incomplete = r.flags & rf::kHeadIncomplete;
    s.ready_unissued = r.flags & rf::kReadyUnissued;
    s.rs_empty_correct = r.flags & rf::kRsEmptyCorrect;
    s.rs_empty_any = r.flags & rf::kRsEmptyAny;
    s.vfp_in_rs = r.flags & rf::kVfpInRs;
    s.unsched = r.unsched();
    s.fe_reason = r.feReason();
    s.head_blame = r.headBlame();
    s.issue_blame = r.issueBlame();
    s.vfp_blame = r.vfpBlame();
    s.n_dispatch = r.n_dispatch;
    s.n_dispatch_wrong = r.n_dispatch_wrong;
    s.n_issue = r.n_issue;
    s.n_issue_wrong = r.n_issue_wrong;
    s.n_commit = r.n_commit;
    s.n_vfp = r.n_vfp;
    s.nonvfp_on_vpu = r.nonvfp_on_vpu;
    s.vfp_lane_ops = r.vfp_lane_ops;
    s.vfp_nonfma_loss = r.vfp_nonfma_loss;
    s.vfp_mask_loss = r.vfp_mask_loss;
    return s;
}

}  // namespace stackscope::stacks

#endif  // STACKSCOPE_STACKS_CYCLE_RECORD_HPP
