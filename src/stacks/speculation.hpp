/**
 * @file
 * Wrong-path handling strategies for the dispatch/issue accountants
 * (paper §III-B).
 *
 * - kOracle: the simulator is functional-first, so wrong-path uops are
 *   known at dispatch; they are excluded from the useful-slot count and
 *   the cycles they occupy are attributed to the bpred component.
 * - kSimple: hardware-realistic approximation; all uops count as useful at
 *   dispatch/issue, and after the run the surplus of the stage's base
 *   component over the commit base component is moved to the bpred
 *   component (this is Yasin's "bad speculation = issue slots - retire
 *   slots" rule).
 * - kSpecCounters: the speculative counter architecture; contributions are
 *   buffered per branch epoch and either flushed to the global counters
 *   when the branch turns out correct, or moved wholesale to the bpred
 *   component when it mispredicts.
 */

#ifndef STACKSCOPE_STACKS_SPECULATION_HPP
#define STACKSCOPE_STACKS_SPECULATION_HPP

#include <deque>

#include "common/types.hpp"
#include "stacks/stack.hpp"

namespace stackscope::stacks {

/** Strategy for discriminating wrong-path work. */
enum class SpeculationMode
{
    kOracle,
    kSimple,
    kSpecCounters,
};

/**
 * Branch-epoch buffer for SpeculationMode::kSpecCounters.
 *
 * Every cycle contribution is added to the epoch of the youngest in-flight
 * branch. When a branch resolves correctly its epoch merges into its
 * parent; when it mispredicts, its epoch and all younger epochs are
 * credited to the bpred component.
 */
class SpeculativeCounters
{
  public:
    /** Record that the branch with sequence number @p seq was fetched. */
    void onBranchFetched(SeqNum seq);

    /**
     * Record the resolution of branch @p seq.
     * @param mispredicted squashes this epoch and all younger ones into
     *        the bpred component of the committed stack.
     */
    void onBranchResolved(SeqNum seq, bool mispredicted);

    /** Accumulate @p value into @p c in the current (youngest) epoch. */
    void add(CpiComponent c, double value);

    /** Committed (architecturally proven) counters. */
    const CpiStack &committed() const { return committed_; }

    /** Flush all outstanding epochs into the committed counters. */
    void finalize();

    /** Number of currently buffered epochs (for tests). */
    std::size_t pendingEpochs() const { return epochs_.size(); }

  private:
    struct Epoch
    {
        SeqNum branch_seq;
        CpiStack pending;
    };

    std::deque<Epoch> epochs_;
    CpiStack committed_;
};

/**
 * Apply the kSimple post-processing rule: move the surplus of @p stack's
 * base component over @p commit_base into the bpred component.
 */
void applySimpleSpeculationFixup(CpiStack &stack, double commit_base);

}  // namespace stackscope::stacks

#endif  // STACKSCOPE_STACKS_SPECULATION_HPP
