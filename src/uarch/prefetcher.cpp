#include "uarch/prefetcher.hpp"

namespace stackscope::uarch {

StridePrefetcher::StridePrefetcher(const PrefetcherParams &params)
    : params_(params)
{
}

std::vector<Addr>
StridePrefetcher::onMiss(Addr addr)
{
    std::vector<Addr> out;
    if (!params_.enable)
        return out;

    if (has_last_) {
        const std::int64_t stride =
            static_cast<std::int64_t>(addr) -
            static_cast<std::int64_t>(last_addr_);
        if (stride != 0 && stride == last_stride_) {
            if (confidence_ < params_.confidence_threshold)
                ++confidence_;
        } else {
            // A fresh non-zero stride observation counts as the first
            // confirmation.
            confidence_ = stride != 0 ? 1 : 0;
        }
        last_stride_ = stride;
    }
    last_addr_ = addr;
    has_last_ = true;

    if (confidence_ >= params_.confidence_threshold && last_stride_ != 0) {
        out.reserve(params_.degree);
        for (unsigned i = 1; i <= params_.degree; ++i) {
            const std::int64_t target =
                static_cast<std::int64_t>(addr) +
                last_stride_ * static_cast<std::int64_t>(i);
            if (target > 0)
                out.push_back(static_cast<Addr>(target));
        }
        issued_ += out.size();
    }
    return out;
}

void
StridePrefetcher::reset()
{
    has_last_ = false;
    last_stride_ = 0;
    confidence_ = 0;
    issued_ = 0;
}

}  // namespace stackscope::uarch
