/**
 * @file
 * Multi-level cache hierarchy with latency, MSHR and bandwidth modeling.
 *
 * Tag state is atomic (lookup+fill at access time); timing is computed as
 * the access flows down the levels, including:
 *  - finite L2 MSHRs: requests that miss L2 wait for a free MSHR, so heavy
 *    prefetch/demand-miss traffic delays later misses (incl. Icache misses,
 *    the bwaves case study of Fig. 3(c));
 *  - finite memory queue slots: models memory bandwidth, which the paper
 *    scales down by the socket core count to mimic a loaded socket (§IV);
 *  - a stride prefetcher trained by L1D demand misses that fills L2 and
 *    occupies MSHRs.
 *
 * L2 and above are unified (instructions + data share capacity), which is
 * what couples the Icache and Dcache components in the cactus case study
 * (Fig. 3(b)).
 */

#ifndef STACKSCOPE_UARCH_CACHE_HIERARCHY_HPP
#define STACKSCOPE_UARCH_CACHE_HIERARCHY_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "uarch/cache.hpp"
#include "uarch/prefetcher.hpp"
#include "uarch/tlb.hpp"

namespace stackscope::uarch {

/** Shared last-level cache and memory interface parameters. */
struct UncoreParams
{
    CacheParams l3{2 << 20, 16, 64};
    /** Extra latency from the L2 miss point to an L3 hit. */
    Cycle l3_lat = 28;
    /** Extra latency from the L3 miss point to data return from DRAM. */
    Cycle mem_lat = 160;
    /** Concurrent memory requests (bandwidth), per attached hierarchy. */
    unsigned mem_queue_slots = 10;
    /** Slot occupancy per request (inverse bandwidth). */
    Cycle mem_service = 4;
};

/**
 * Shared L3 + DRAM model. One instance may be shared by several
 * CacheHierarchy objects (multi-core), serializing on the same memory
 * queue slots.
 */
class Uncore
{
  public:
    explicit Uncore(const UncoreParams &params);

    struct Result
    {
        Cycle done;
        bool l3_hit;
    };

    /** Access for a request that left a core's L2 at time @p now. */
    Result access(Addr addr, Cycle now);

    std::uint64_t l3Misses() const { return l3_.misses(); }
    Cache &l3() { return l3_; }

  private:
    UncoreParams params_;
    Cache l3_;
    std::vector<Cycle> mem_slots_;
};

/** Per-core cache parameters. */
struct HierarchyParams
{
    CacheParams l1i{32 << 10, 8, 64};
    CacheParams l1d{32 << 10, 8, 64};
    CacheParams l2{256 << 10, 8, 64};
    /** Total load-to-use latency for an L1 hit. */
    Cycle l1_lat = 4;
    /** Total latency for an L2 hit. */
    Cycle l2_lat = 12;
    /** L2 miss-status-holding registers. */
    unsigned l2_mshrs = 12;
    PrefetcherParams prefetch{};
    /** Instruction TLB (misses add walk latency to the fetch). */
    TlbParams itlb{true, 256, 4096, 9};
    /** Data TLB (misses add walk latency to the load/store). */
    TlbParams dtlb{true, 1024, 4096, 9};
    UncoreParams uncore{};

    /** Idealization knobs (§IV): every access hits in L1. */
    bool perfect_icache = false;
    bool perfect_dcache = false;
};

/** Outcome of a timed memory access. */
struct AccessResult
{
    /** Cycle at which data is available to the pipeline. */
    Cycle done = 0;
    /** Hit in the first-level cache. */
    bool l1_hit = true;
    /** Level that served the access: 1, 2, 3 (L3) or 4 (memory). */
    unsigned level = 1;
};

/**
 * A private L1I/L1D/L2 stack in front of a (possibly shared) Uncore.
 */
class CacheHierarchy
{
  public:
    /**
     * @param params geometry and latencies.
     * @param shared_uncore L3+memory shared with other cores; when null a
     *                      private Uncore is created from params.uncore.
     */
    explicit CacheHierarchy(const HierarchyParams &params,
                            Uncore *shared_uncore = nullptr);

    /** Timed instruction fetch of the line containing @p pc. */
    AccessResult ifetch(Addr pc, Cycle now);

    /** Timed data load. */
    AccessResult load(Addr addr, Cycle now);

    /**
     * Data store (write-allocate). The pipeline does not wait for stores;
     * the access still consumes MSHR/memory bandwidth and updates tags.
     */
    void store(Addr addr, Cycle now);

    /** @name Statistics @{ */
    std::uint64_t l1iMisses() const { return l1i_.misses(); }
    std::uint64_t itlbMisses() const { return itlb_.misses(); }
    std::uint64_t dtlbMisses() const { return dtlb_.misses(); }
    std::uint64_t l1dMisses() const { return l1d_.misses(); }
    std::uint64_t l2Misses() const { return l2_.misses(); }
    std::uint64_t prefetchesIssued() const { return prefetcher_.issued(); }
    /** Total cycles requests spent waiting for a free L2 MSHR. */
    std::uint64_t mshrWaitCycles() const { return mshr_wait_cycles_; }
    /** @} */

    const HierarchyParams &params() const { return params_; }

  private:
    /**
     * Handle a request that missed in its L1 at time @p now: walk L2 /
     * uncore, acquire an MSHR on an L2 miss, fill tags on the way back.
     */
    AccessResult missToL2(Addr addr, Cycle now, bool is_ifetch,
                          bool is_prefetch);

    /** Issue prefetch candidates after a demand miss at @p addr. */
    void trainPrefetcher(Addr addr, Cycle now);

    HierarchyParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Tlb itlb_;
    Tlb dtlb_;
    StridePrefetcher prefetcher_;
    std::unique_ptr<Uncore> owned_uncore_;
    Uncore *uncore_;
    std::vector<Cycle> mshr_busy_;
    std::uint64_t mshr_wait_cycles_ = 0;
};

}  // namespace stackscope::uarch

#endif  // STACKSCOPE_UARCH_CACHE_HIERARCHY_HPP
