/**
 * @file
 * The in-flight (renamed) instruction record stored in the ROB.
 */

#ifndef STACKSCOPE_UARCH_INFLIGHT_HPP
#define STACKSCOPE_UARCH_INFLIGHT_HPP

#include "common/types.hpp"
#include "trace/instruction.hpp"

namespace stackscope::uarch {

/**
 * One dynamic instruction from fetch to commit (or squash).
 */
struct InflightInstr
{
    /** Static/trace information. */
    trace::DynInstr instr;

    /** Dynamic sequence number (assigned at fetch, wrong path included). */
    SeqNum seq = kNoSeq;

    /**
     * Correct-path trace index (producer token for dependents);
     * kNoSeq for wrong-path uops.
     */
    std::uint64_t trace_index = kNoSeq;

    bool wrong_path = false;

    /** Branch that the predictor got wrong (triggers squash at execute). */
    bool mispredicted = false;

    bool issued = false;
    bool completed = false;

    /** Load that missed the L1 Dcache (drives "Dcache" blame). */
    bool dcache_miss = false;

    /** Execution latency assigned at issue (cycles from issue to done). */
    Cycle exec_latency = 1;

    Cycle fetch_cycle = 0;
    Cycle dispatch_cycle = 0;
    Cycle issue_cycle = kNeverCycle;
    Cycle complete_cycle = kNeverCycle;

    /**
     * Wrong-path intra-ROB dependence: ROB slot + seq of a producer uop
     * (wrong-path uops cannot reference trace indices).
     */
    int wp_dep_slot = -1;
    SeqNum wp_dep_seq = kNoSeq;

    bool isWrongPath() const { return wrong_path; }
    bool longLatency() const { return exec_latency > 1; }
};

}  // namespace stackscope::uarch

#endif  // STACKSCOPE_UARCH_INFLIGHT_HPP
