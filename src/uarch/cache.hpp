/**
 * @file
 * Set-associative cache tag array with LRU replacement.
 *
 * Stackscope caches model tag state only (no data): lookups and fills are
 * atomic, and timing/contention is layered on top by CacheHierarchy
 * (latencies, MSHR occupancy, memory bandwidth).
 */

#ifndef STACKSCOPE_UARCH_CACHE_HPP
#define STACKSCOPE_UARCH_CACHE_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace stackscope::uarch {

/** Geometry of one cache level. */
struct CacheParams
{
    std::uint64_t size_bytes = 32 << 10;
    unsigned assoc = 8;
    unsigned line_bytes = 64;
};

/**
 * Tag-only set-associative cache with true-LRU replacement.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p addr.
     * @param update_lru promote the line to MRU on a hit.
     * @retval true the line is present.
     */
    bool lookup(Addr addr, bool update_lru = true);

    /** Fill the line containing @p addr, evicting the LRU way if needed. */
    void insert(Addr addr);

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr);

    /** Drop all contents. */
    void invalidateAll();

    unsigned numSets() const { return num_sets_; }
    unsigned assoc() const { return params_.assoc; }
    unsigned lineBytes() const { return params_.line_bytes; }

    /** Statistics: lifetime lookups / misses (including fills' lookups). */
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        std::uint32_t lru = 0;  ///< lower = older
    };

    Addr
    lineAddr(Addr addr) const
    {
        // line_bytes and num_sets_ are powers of two in every real config;
        // shift/mask avoids two integer divisions on the hottest path in
        // the memory hierarchy (odd sizes fall back to div/mod).
        return pow2_ ? addr >> line_shift_ : addr / params_.line_bytes;
    }
    unsigned
    setIndex(Addr line) const
    {
        return static_cast<unsigned>(pow2_ ? line & set_mask_
                                           : line % num_sets_);
    }

    CacheParams params_;
    unsigned num_sets_;
    bool pow2_ = false;
    unsigned line_shift_ = 0;
    Addr set_mask_ = 0;
    std::vector<Way> ways_;         ///< num_sets_ x assoc, row-major
    std::vector<std::uint32_t> set_clock_;  ///< per-set LRU clock
    std::uint64_t lookups_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace stackscope::uarch

#endif  // STACKSCOPE_UARCH_CACHE_HPP
