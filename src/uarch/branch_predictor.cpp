#include "uarch/branch_predictor.hpp"

namespace stackscope::uarch {

BranchPredictor::BranchPredictor(const BranchPredictorParams &params)
    : params_(params)
{
    gshare_.assign(1ULL << params_.gshare_bits, 1);
    bimodal_.assign(1ULL << params_.bimodal_bits, 1);
    chooser_.assign(1ULL << params_.chooser_bits, 2);  // slight gshare bias
    history_mask_ = (1ULL << params_.history_bits) - 1;
}

bool
BranchPredictor::predictAndUpdate(Addr pc, bool taken)
{
    ++predictions_;
    if (params_.perfect)
        return true;

    const std::uint64_t pc_bits = pc >> 2;
    const std::uint64_t gidx =
        (pc_bits ^ history_) & ((1ULL << params_.gshare_bits) - 1);
    const std::uint64_t bidx = pc_bits & ((1ULL << params_.bimodal_bits) - 1);
    const std::uint64_t cidx = pc_bits & ((1ULL << params_.chooser_bits) - 1);

    const bool g_pred = counterTaken(gshare_[gidx]);
    const bool b_pred = counterTaken(bimodal_[bidx]);
    const bool use_gshare = counterTaken(chooser_[cidx]);
    const bool pred = use_gshare ? g_pred : b_pred;

    // Train: chooser moves toward whichever component was right.
    if (g_pred != b_pred)
        counterUpdate(chooser_[cidx], g_pred == taken);
    counterUpdate(gshare_[gidx], taken);
    counterUpdate(bimodal_[bidx], taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;

    const bool correct = pred == taken;
    if (!correct)
        ++mispredictions_;
    return correct;
}

}  // namespace stackscope::uarch
