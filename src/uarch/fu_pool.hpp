/**
 * @file
 * Functional-unit / issue-port pool with per-class latencies.
 *
 * Models per-cycle issue bandwidth per unit group (ALU, multiplier,
 * divider, load/store ports, scalar FP, vector units) and occupancy of
 * unpipelined units (dividers). Exposes the per-cycle vector-unit usage
 * split (VFP vs non-VFP) that the FLOPS accountant needs (Table III).
 */

#ifndef STACKSCOPE_UARCH_FU_POOL_HPP
#define STACKSCOPE_UARCH_FU_POOL_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "trace/instruction.hpp"

namespace stackscope::uarch {

/** Unit counts and execution latencies. */
struct FuPoolParams
{
    unsigned alu_units = 4;     ///< simple-integer issue slots per cycle
    unsigned mul_units = 1;
    unsigned div_units = 1;     ///< shared int/FP divider (unpipelined)
    unsigned load_ports = 2;
    unsigned store_ports = 1;
    unsigned branch_units = 1;
    unsigned fp_units = 2;      ///< scalar FP pipes
    unsigned vpu_units = 2;     ///< vector pipes ("k" of Table III)

    Cycle lat_alu = 1;
    Cycle lat_mul = 3;
    Cycle lat_div = 22;
    Cycle lat_branch = 1;
    Cycle lat_fp_add = 3;
    Cycle lat_fp_mul = 4;
    Cycle lat_fp_div = 16;
    Cycle lat_vec_fma = 4;
    Cycle lat_vec_arith = 4;   ///< vector add/mul
    Cycle lat_vec_other = 3;   ///< vector int / broadcast
    /** Load execute latency is supplied by the cache hierarchy. */

    /**
     * Idealization knob (§IV, Table I "1-cycle ALU"): all arithmetic and
     * logic instructions complete in 1 cycle (dividers become pipelined).
     */
    bool ideal_single_cycle_alu = false;
};

/**
 * Issue-port and functional-unit availability tracker.
 *
 * Call beginCycle() once per simulated cycle, then canIssue()/issue() for
 * each candidate uop.
 */
class FuPool
{
  public:
    explicit FuPool(const FuPoolParams &params);

    /** Reset per-cycle port counters. */
    void beginCycle(Cycle now);

    /** Would a uop of class @p cls find a free unit this cycle? */
    bool canIssue(trace::InstrClass cls) const;

    /** Consume a unit for @p cls; must follow a successful canIssue. */
    void issue(trace::InstrClass cls, Cycle now);

    /** Execution latency of @p cls (loads/stores excluded: cache decides). */
    Cycle latency(trace::InstrClass cls) const;

    /** @name Per-cycle vector-unit usage (for the FLOPS accountant) @{ */
    unsigned vfpIssuedThisCycle() const { return vpu_vfp_; }
    unsigned nonVfpOnVpuThisCycle() const { return vpu_nonvfp_; }
    /** @} */

    const FuPoolParams &params() const { return params_; }

  private:
    enum Group : unsigned
    {
        kGroupAlu,
        kGroupMul,
        kGroupDiv,
        kGroupLoad,
        kGroupStore,
        kGroupBranch,
        kGroupFp,
        kGroupVpu,
        kNumGroups,
    };

    static Group classGroup(trace::InstrClass cls);
    unsigned groupLimit(Group g) const;

    FuPoolParams params_;
    Cycle now_ = 0;
    unsigned used_[kNumGroups] = {};
    unsigned vpu_vfp_ = 0;
    unsigned vpu_nonvfp_ = 0;
    /** Busy-until times of the unpipelined divider units. */
    std::vector<Cycle> div_busy_;
};

}  // namespace stackscope::uarch

#endif  // STACKSCOPE_UARCH_FU_POOL_HPP
