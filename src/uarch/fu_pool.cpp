#include "uarch/fu_pool.hpp"

#include <algorithm>
#include <cassert>

namespace stackscope::uarch {

using trace::InstrClass;

FuPool::FuPool(const FuPoolParams &params)
    : params_(params)
{
    div_busy_.resize(std::max(1u, params_.div_units), 0);
}

FuPool::Group
FuPool::classGroup(InstrClass cls)
{
    switch (cls) {
      case InstrClass::kNop:
      case InstrClass::kAlu:
      case InstrClass::kYield:
        return kGroupAlu;
      case InstrClass::kAluMul:
        return kGroupMul;
      case InstrClass::kAluDiv:
      case InstrClass::kFpDiv:
        return kGroupDiv;
      case InstrClass::kLoad:
        return kGroupLoad;
      case InstrClass::kVecBroadcast:
        // Broadcasts are emitted as memory-operand broadcasts in MKL-style
        // code: they execute on the load ports, not the vector FP units.
        return kGroupLoad;
      case InstrClass::kStore:
        return kGroupStore;
      case InstrClass::kBranch:
        return kGroupBranch;
      case InstrClass::kFpAdd:
      case InstrClass::kFpMul:
        return kGroupFp;
      case InstrClass::kVecFma:
      case InstrClass::kVecAdd:
      case InstrClass::kVecMul:
      case InstrClass::kVecInt:
        return kGroupVpu;
    }
    return kGroupAlu;
}

unsigned
FuPool::groupLimit(Group g) const
{
    switch (g) {
      case kGroupAlu: return params_.alu_units;
      case kGroupMul: return params_.mul_units;
      case kGroupDiv: return params_.div_units;
      case kGroupLoad: return params_.load_ports;
      case kGroupStore: return params_.store_ports;
      case kGroupBranch: return params_.branch_units;
      case kGroupFp: return params_.fp_units;
      case kGroupVpu: return params_.vpu_units;
      default: return 0;
    }
}

void
FuPool::beginCycle(Cycle now)
{
    now_ = now;
    std::fill(std::begin(used_), std::end(used_), 0u);
    vpu_vfp_ = 0;
    vpu_nonvfp_ = 0;
}

bool
FuPool::canIssue(InstrClass cls) const
{
    const Group g = classGroup(cls);
    if (used_[g] >= groupLimit(g))
        return false;
    if (g == kGroupDiv && !params_.ideal_single_cycle_alu) {
        // Unpipelined dividers: need one whose previous op has drained.
        unsigned free_units = 0;
        for (Cycle busy : div_busy_) {
            if (busy <= now_)
                ++free_units;
        }
        return used_[g] < free_units;
    }
    return true;
}

void
FuPool::issue(InstrClass cls, Cycle now)
{
    const Group g = classGroup(cls);
    assert(canIssue(cls));
    ++used_[g];
    if (g == kGroupDiv && !params_.ideal_single_cycle_alu) {
        auto unit = std::min_element(div_busy_.begin(), div_busy_.end());
        *unit = now + latency(cls);
    }
    if (g == kGroupVpu) {
        if (trace::isVfp(cls))
            ++vpu_vfp_;
        else
            ++vpu_nonvfp_;
    }
}

Cycle
FuPool::latency(InstrClass cls) const
{
    if (params_.ideal_single_cycle_alu) {
        switch (cls) {
          case InstrClass::kLoad:
          case InstrClass::kStore:
            break;  // cache-determined
          default:
            return 1;
        }
    }
    switch (cls) {
      case InstrClass::kNop:
      case InstrClass::kAlu:
      case InstrClass::kYield:
        return params_.lat_alu;
      case InstrClass::kAluMul: return params_.lat_mul;
      case InstrClass::kAluDiv: return params_.lat_div;
      case InstrClass::kBranch: return params_.lat_branch;
      case InstrClass::kFpAdd: return params_.lat_fp_add;
      case InstrClass::kFpMul: return params_.lat_fp_mul;
      case InstrClass::kFpDiv: return params_.lat_fp_div;
      case InstrClass::kVecFma: return params_.lat_vec_fma;
      case InstrClass::kVecAdd:
      case InstrClass::kVecMul:
        return params_.lat_vec_arith;
      case InstrClass::kVecInt:
      case InstrClass::kVecBroadcast:
        return params_.lat_vec_other;
      case InstrClass::kLoad:
      case InstrClass::kStore:
        return 1;  // overridden by the cache access
    }
    return 1;
}

}  // namespace stackscope::uarch
