/**
 * @file
 * Reservation stations (unified issue queue).
 *
 * Holds ROB slots of dispatched-but-not-yet-issued uops in age order. The
 * issue stage scans it oldest-first; the accountants use its occupancy
 * ("RS empty", "RS full") per Table II.
 *
 * Layout is structure-of-arrays: alongside the age-ordered slot list, the
 * per-entry readiness state and cached issue blame live in parallel
 * arrays indexed by *position*, not ROB slot. Readiness is stored twice:
 * the true 64-bit bound (`bounds_`) and a 32-bit epoch-relative key
 * (`keys_`) the issue walk actually scans. Keys are `bound - epoch_`
 * saturated into [0, simd::kNeverKey]; the epoch rebases (and every key
 * is rewritten) once the current cycle drifts 2^30 cycles past it, so a
 * key never exceeds kNeverKey and the SIMD scan can use cheap 32-bit
 * compares (common/simd.hpp). Saturation is always *downward* (a stored
 * key is never later than the truth), so a saturated key can only cause
 * a harmless early re-evaluation, never a missed wake. The keys array is
 * contiguous in age order and padded to a multiple of simd::kScanBlock
 * with kNeverKey sentinels, so the walk's "which entries must be
 * re-evaluated this cycle?" scan runs as straight-line SIMD over the
 * active prefix instead of a gather through slot-indexed storage
 * (docs/performance.md). A position map (`pos_of_slot_`) keeps producer
 * wakeups O(1).
 *
 * Bound semantics (owned by the issue stage): 0 means "evaluate every
 * cycle", kNeverCycle means "parked until a producer wakeup re-arms it",
 * anything else is a provable earliest-ready cycle.
 */

#ifndef STACKSCOPE_UARCH_RESERVATION_STATION_HPP
#define STACKSCOPE_UARCH_RESERVATION_STATION_HPP

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/simd.hpp"
#include "common/types.hpp"

namespace stackscope::uarch {

/**
 * Fixed-capacity, age-ordered issue queue of ROB slot indices with
 * position-parallel readiness bounds.
 */
class ReservationStations
{
  public:
    /**
     * @param capacity RS entries.
     * @param rob_capacity Highest ROB slot value + 1 that will ever be
     *        inserted; sizes the slot→position map. The map grows on
     *        demand when 0 (convenient for tests).
     */
    explicit ReservationStations(unsigned capacity, unsigned rob_capacity = 0)
        : capacity_(capacity)
    {
        assert(capacity > 0);
        slots_.reserve(capacity);
        const unsigned padded =
            (capacity + simd::kScanBlock - 1) / simd::kScanBlock *
            simd::kScanBlock;
        bounds_.assign(padded, kNeverCycle);
        keys_.assign(padded, simd::kNeverKey);
        blames_.assign(padded, 0);
        tags_.assign(padded, 0);
        pos_of_slot_.assign(rob_capacity, kNoPos);
    }

    bool full() const { return slots_.size() >= capacity_; }
    bool empty() const { return slots_.empty(); }
    unsigned size() const { return static_cast<unsigned>(slots_.size()); }
    unsigned capacity() const { return capacity_; }

    /**
     * Insert at the tail (dispatch happens in age order), bound 0.
     * @p tag is an opaque per-entry byte the owner can scan positionally
     * (the core stores a correct-path-VFP flag there so the FLOPS census
     * never has to chase entries into the ROB).
     */
    void
    insert(unsigned rob_slot, std::uint8_t tag = 0)
    {
        assert(!full());
        if (rob_slot >= pos_of_slot_.size())
            pos_of_slot_.resize(rob_slot + 1, kNoPos);
        const unsigned pos = size();
        slots_.push_back(rob_slot);
        bounds_[pos] = 0;
        keys_[pos] = 0;
        blames_[pos] = 0;
        tags_[pos] = tag;
        pos_of_slot_[rob_slot] = static_cast<std::uint16_t>(pos);
    }

    /** Age-ordered view of the queued ROB slots. */
    const std::vector<unsigned> &entries() const { return slots_; }

    /**
     * Age-ordered per-entry tag bytes (valid for size() entries; contents
     * beyond that are stale, not sentinel).
     */
    const std::uint8_t *tags() const { return tags_.data(); }

    /**
     * Age-ordered epoch-relative readiness keys, contiguous, padded to a
     * multiple of simd::kScanBlock with simd::kNeverKey. Valid for size()
     * entries; the pointer is stable (no reallocation after
     * construction).
     */
    const std::uint32_t *keys() const { return keys_.data(); }

    Cycle boundAt(unsigned pos) const { return bounds_[pos]; }
    std::uint8_t blameAt(unsigned pos) const { return blames_[pos]; }

    /**
     * Rebase the key epoch if @p now has drifted far enough that key
     * saturation could start to bite, then return @p now as a key. Call
     * once at the top of each issue walk, before reading keys().
     */
    std::uint32_t
    nowKey(Cycle now)
    {
        if (now - epoch_ >= kRebaseAt) {
            epoch_ = now;
            const unsigned n = size();
            for (unsigned i = 0; i < n; ++i)
                keys_[i] = keyOf(bounds_[i]);
        }
        return static_cast<std::uint32_t>(now - epoch_);
    }

    /** Translate a scan wake key back to an absolute cycle. */
    Cycle
    keyToCycle(std::uint32_t key) const
    {
        return key >= simd::kNeverKey ? kNeverCycle : epoch_ + key;
    }

    /** Cache a readiness bound + replayable blame for the entry at @p pos. */
    void
    park(unsigned pos, Cycle bound, std::uint8_t blame)
    {
        bounds_[pos] = bound;
        keys_[pos] = keyOf(bound);
        blames_[pos] = blame;
    }

    /**
     * Producer wakeup: drop the bound of @p rob_slot's entry to 0
     * ("re-evaluate") if the slot is currently queued. A slot that has
     * already issued, committed or been squashed is simply absent and the
     * wake is a no-op.
     */
    bool
    rearmSlot(unsigned rob_slot)
    {
        if (rob_slot >= pos_of_slot_.size())
            return false;
        const std::uint16_t pos = pos_of_slot_[rob_slot];
        if (pos == kNoPos)
            return false;
        bounds_[pos] = 0;
        keys_[pos] = 0;
        return true;
    }

    /** Remove one entry (after issue). */
    void
    remove(unsigned rob_slot)
    {
        assert(rob_slot < pos_of_slot_.size() &&
               pos_of_slot_[rob_slot] != kNoPos);
        removeIf([rob_slot](unsigned s) { return s == rob_slot; });
    }

    /**
     * Remove the entries at the given ascending @p positions (the issue
     * sweep: positions were recorded during the walk, so no per-entry
     * predicate or mark array is needed). Compaction starts at the first
     * removed position; everything before it is untouched.
     */
    void
    removeAtPositions(const std::vector<unsigned> &positions)
    {
        assert(!positions.empty());
        const unsigned n = size();
        unsigned w = positions[0];
        unsigned k = 0;
        for (unsigned r = w; r < n; ++r) {
            if (k < positions.size() && positions[k] == r) {
                pos_of_slot_[slots_[r]] = kNoPos;
                ++k;
                continue;
            }
            const unsigned s = slots_[r];
            slots_[w] = s;
            bounds_[w] = bounds_[r];
            keys_[w] = keys_[r];
            blames_[w] = blames_[r];
            tags_[w] = tags_[r];
            pos_of_slot_[s] = static_cast<std::uint16_t>(w);
            ++w;
        }
        assert(k == positions.size());
        slots_.resize(w);
        for (unsigned i = w; i < n; ++i)
            keys_[i] = simd::kNeverKey;
    }

    /**
     * Remove all entries matching @p pred (squash recovery), compacting
     * the parallel arrays and restoring the kNeverKey padding behind the
     * new tail.
     */
    template <typename Pred>
    void
    removeIf(Pred &&pred)
    {
        const unsigned n = size();
        unsigned w = 0;
        for (unsigned r = 0; r < n; ++r) {
            const unsigned s = slots_[r];
            if (pred(s)) {
                pos_of_slot_[s] = kNoPos;
                continue;
            }
            slots_[w] = s;
            bounds_[w] = bounds_[r];
            keys_[w] = keys_[r];
            blames_[w] = blames_[r];
            tags_[w] = tags_[r];
            pos_of_slot_[s] = static_cast<std::uint16_t>(w);
            ++w;
        }
        slots_.resize(w);
        for (unsigned i = w; i < n; ++i)
            keys_[i] = simd::kNeverKey;
    }

  private:
    static constexpr std::uint16_t kNoPos = 0xffff;
    /** Rebase once now - epoch_ reaches this (2^30): far below key
     *  saturation (2^31 - 1), so a finite in-range bound never maps to
     *  kNeverKey between rebases. */
    static constexpr Cycle kRebaseAt = Cycle{1} << 30;

    /**
     * Epoch-relative saturating key of a bound. kNeverCycle maps to
     * kNeverKey (excluded from the wake minimum — a producer re-arm, not
     * a timer, wakes those entries); a finite bound saturates one below
     * it, keeping the stored key <= the truth so the walk errs toward
     * re-evaluating early, never toward sleeping past the bound.
     */
    std::uint32_t
    keyOf(Cycle bound) const
    {
        if (bound == kNeverCycle)
            return simd::kNeverKey;
        if (bound <= epoch_)
            return 0;
        const Cycle rel = bound - epoch_;
        return rel >= simd::kNeverKey
                   ? simd::kNeverKey - 1
                   : static_cast<std::uint32_t>(rel);
    }

    unsigned capacity_;
    std::vector<unsigned> slots_;
    std::vector<Cycle> bounds_;
    std::vector<std::uint32_t> keys_;
    std::vector<std::uint8_t> blames_;
    std::vector<std::uint8_t> tags_;
    std::vector<std::uint16_t> pos_of_slot_;
    Cycle epoch_ = 0;
};

}  // namespace stackscope::uarch

#endif  // STACKSCOPE_UARCH_RESERVATION_STATION_HPP
