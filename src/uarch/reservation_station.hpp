/**
 * @file
 * Reservation stations (unified issue queue).
 *
 * Holds ROB slots of dispatched-but-not-yet-issued uops in age order. The
 * issue stage scans it oldest-first; the accountants use its occupancy
 * ("RS empty", "RS full") per Table II.
 */

#ifndef STACKSCOPE_UARCH_RESERVATION_STATION_HPP
#define STACKSCOPE_UARCH_RESERVATION_STATION_HPP

#include <algorithm>
#include <cassert>
#include <vector>

namespace stackscope::uarch {

/**
 * Fixed-capacity, age-ordered issue queue of ROB slot indices.
 */
class ReservationStations
{
  public:
    explicit ReservationStations(unsigned capacity)
        : capacity_(capacity)
    {
        assert(capacity > 0);
        slots_.reserve(capacity);
    }

    bool full() const { return slots_.size() >= capacity_; }
    bool empty() const { return slots_.empty(); }
    unsigned size() const { return static_cast<unsigned>(slots_.size()); }
    unsigned capacity() const { return capacity_; }

    /** Insert at the tail (dispatch happens in age order). */
    void
    insert(unsigned rob_slot)
    {
        assert(!full());
        slots_.push_back(rob_slot);
    }

    /** Age-ordered view of the queued ROB slots. */
    const std::vector<unsigned> &entries() const { return slots_; }

    /** Remove one entry (after issue). */
    void
    remove(unsigned rob_slot)
    {
        auto it = std::find(slots_.begin(), slots_.end(), rob_slot);
        assert(it != slots_.end());
        slots_.erase(it);
    }

    /** Remove all entries matching @p pred (squash recovery). */
    template <typename Pred>
    void
    removeIf(Pred &&pred)
    {
        slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                                    std::forward<Pred>(pred)),
                     slots_.end());
    }

  private:
    unsigned capacity_;
    std::vector<unsigned> slots_;
};

}  // namespace stackscope::uarch

#endif  // STACKSCOPE_UARCH_RESERVATION_STATION_HPP
