/**
 * @file
 * Translation lookaside buffer model.
 *
 * The paper's Icache and Dcache components explicitly cover "misses in the
 * instruction and data cache (and TLB)" (§III-A). A TLB miss simply adds
 * its walk latency to the access that triggered it, so the penalty
 * naturally lands in the same stack component as the cache miss path.
 *
 * The model is a single-level, set-associative, LRU TLB sized like a
 * unified second-level TLB (the small first-level TLBs hit under it and
 * are not modeled separately).
 */

#ifndef STACKSCOPE_UARCH_TLB_HPP
#define STACKSCOPE_UARCH_TLB_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace stackscope::uarch {

/** TLB geometry and walk cost. */
struct TlbParams
{
    bool enable = true;
    unsigned entries = 1024;
    unsigned page_bytes = 4096;
    /** Added latency of a page walk on a miss (STLB-hit walks). */
    Cycle miss_latency = 9;
};

/**
 * Set-associative LRU TLB (8-way).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbParams &params);

    /**
     * Translate the page containing @p addr.
     * @return extra cycles added by the walk (0 on a hit or when disabled).
     */
    Cycle access(Addr addr);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

    void flush();

  private:
    struct Entry
    {
        Addr page = ~Addr{0};
        std::uint64_t stamp = 0;
    };

    static constexpr unsigned kWays = 8;

    TlbParams params_;
    unsigned num_sets_;
    bool pow2_ = false;  ///< page_bytes and num_sets_ both powers of two
    unsigned page_shift_ = 0;
    Addr set_mask_ = 0;
    std::vector<Entry> entries_;  ///< num_sets_ x kWays, row-major
    std::uint64_t clock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace stackscope::uarch

#endif  // STACKSCOPE_UARCH_TLB_HPP
