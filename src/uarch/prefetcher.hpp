/**
 * @file
 * Stride-based hardware prefetcher.
 *
 * Trains on the L1D miss stream and, once a stable stride is detected,
 * emits prefetch candidates several lines ahead. The prefetches themselves
 * are issued by CacheHierarchy and occupy L2 MSHRs, reproducing the bwaves
 * behaviour of the paper (Fig. 3(c)): prefetch traffic keeps the MSHRs
 * saturated so that Icache misses queue behind them.
 */

#ifndef STACKSCOPE_UARCH_PREFETCHER_HPP
#define STACKSCOPE_UARCH_PREFETCHER_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace stackscope::uarch {

/** Prefetcher knobs. */
struct PrefetcherParams
{
    bool enable = true;
    /** Lines prefetched ahead once the stride is confident. */
    unsigned degree = 4;
    /** Consecutive confirmations before prefetching starts. */
    unsigned confidence_threshold = 2;
    unsigned line_bytes = 64;
};

/**
 * Single-stream stride detector (adequate for the generated workloads,
 * which carry at most one dominant stream per core).
 */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherParams &params);

    /**
     * Observe a demand miss at @p addr; returns the list of addresses to
     * prefetch (possibly empty).
     */
    std::vector<Addr> onMiss(Addr addr);

    /** Lifetime number of prefetch candidates produced. */
    std::uint64_t issued() const { return issued_; }

    void reset();

  private:
    PrefetcherParams params_;
    Addr last_addr_ = 0;
    std::int64_t last_stride_ = 0;
    unsigned confidence_ = 0;
    bool has_last_ = false;
    std::uint64_t issued_ = 0;
};

}  // namespace stackscope::uarch

#endif  // STACKSCOPE_UARCH_PREFETCHER_HPP
