// Rob is header-only; this translation unit exists to give the uarch
// library a home for the class and to catch ODR/compile issues early.
#include "uarch/rob.hpp"

namespace stackscope::uarch {

// Force instantiation of the template members with a simple visitor so
// compile errors surface when building the library, not first use.
namespace {

[[maybe_unused]] void
instantiationCheck()
{
    Rob rob(4);
    rob.forEach([](const InflightInstr &) {});
}

}  // namespace

}  // namespace stackscope::uarch
