// ReservationStations is header-only; see reservation_station.hpp.
#include "uarch/reservation_station.hpp"
