/**
 * @file
 * Hybrid gshare/bimodal conditional branch predictor.
 *
 * Stackscope is functional-first, so the actual branch outcome is known at
 * prediction time; the predictor is consulted and trained immediately, and
 * the pipeline realizes the misprediction penalty by fetching wrong-path
 * uops until the branch executes (see core::OooCore).
 */

#ifndef STACKSCOPE_UARCH_BRANCH_PREDICTOR_HPP
#define STACKSCOPE_UARCH_BRANCH_PREDICTOR_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace stackscope::uarch {

/** Predictor configuration. */
struct BranchPredictorParams
{
    unsigned gshare_bits = 14;   ///< log2 entries of the gshare table
    unsigned bimodal_bits = 13;  ///< log2 entries of the bimodal table
    unsigned chooser_bits = 12;  ///< log2 entries of the meta chooser
    unsigned history_bits = 12;  ///< global history length
    /** Idealization knob (§IV): every prediction is correct. */
    bool perfect = false;
};

/**
 * gshare + bimodal with a per-PC chooser (2-bit counters throughout).
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorParams &params);

    /**
     * Predict the branch at @p pc and immediately train with the actual
     * outcome @p taken.
     * @retval true the prediction was correct.
     */
    bool predictAndUpdate(Addr pc, bool taken);

    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t mispredictions() const { return mispredictions_; }

    /** Misprediction rate over the predictor's lifetime. */
    double missRate() const
    {
        return predictions_ == 0
                   ? 0.0
                   : static_cast<double>(mispredictions_) /
                         static_cast<double>(predictions_);
    }

  private:
    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static void counterUpdate(std::uint8_t &c, bool taken)
    {
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
    }

    BranchPredictorParams params_;
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> chooser_;
    std::uint64_t history_ = 0;
    std::uint64_t history_mask_;
    std::uint64_t predictions_ = 0;
    std::uint64_t mispredictions_ = 0;
};

}  // namespace stackscope::uarch

#endif  // STACKSCOPE_UARCH_BRANCH_PREDICTOR_HPP
