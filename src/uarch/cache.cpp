#include "uarch/cache.hpp"

#include <cassert>

namespace stackscope::uarch {

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    assert(params_.line_bytes > 0 && params_.assoc > 0);
    assert(params_.size_bytes >= params_.line_bytes * params_.assoc);
    num_sets_ = static_cast<unsigned>(
        params_.size_bytes / (params_.line_bytes * params_.assoc));
    assert(num_sets_ > 0);
    ways_.resize(static_cast<std::size_t>(num_sets_) * params_.assoc);
    set_clock_.resize(num_sets_, 0);
    const auto is_pow2 = [](std::uint64_t v) {
        return v != 0 && (v & (v - 1)) == 0;
    };
    pow2_ = is_pow2(params_.line_bytes) && is_pow2(num_sets_);
    if (pow2_) {
        while ((Addr{1} << line_shift_) < params_.line_bytes)
            ++line_shift_;
        set_mask_ = num_sets_ - 1;
    }
}

bool
Cache::lookup(Addr addr, bool update_lru)
{
    ++lookups_;
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == line) {
            if (update_lru)
                base[w].lru = ++set_clock_[set];
            return true;
        }
    }
    ++misses_;
    return false;
}

void
Cache::insert(Addr addr)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * params_.assoc];
    Way *victim = &base[0];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == line) {
            // Already present (e.g., racing prefetch): just touch it.
            base[w].lru = ++set_clock_[set];
            return;
        }
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->tag = line;
    victim->valid = true;
    victim->lru = ++set_clock_[set];
}

void
Cache::invalidate(Addr addr)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].valid = false;
            return;
        }
    }
}

void
Cache::invalidateAll()
{
    for (Way &w : ways_)
        w.valid = false;
}

}  // namespace stackscope::uarch
