/**
 * @file
 * Reorder buffer: a fixed-capacity circular buffer of in-flight
 * instructions in fetch order, with tail squash for branch misprediction
 * recovery.
 */

#ifndef STACKSCOPE_UARCH_ROB_HPP
#define STACKSCOPE_UARCH_ROB_HPP

#include <cassert>
#include <utility>
#include <vector>

#include "uarch/inflight.hpp"

namespace stackscope::uarch {

/**
 * Circular reorder buffer.
 *
 * Slots are physical indices into the backing store; they remain stable
 * for the lifetime of an entry and are reused after commit/squash.
 * Consumers that cache slots (e.g., the writeback event queue) must
 * validate with the stored sequence number.
 */
class Rob
{
  public:
    explicit Rob(unsigned capacity)
        : entries_(capacity)
    {
        assert(capacity > 0);
    }

    bool full() const { return count_ == entries_.size(); }
    bool empty() const { return count_ == 0; }
    unsigned size() const { return static_cast<unsigned>(count_); }
    unsigned capacity() const
    {
        return static_cast<unsigned>(entries_.size());
    }

    /** Append at the tail; the ROB must not be full. */
    unsigned
    push(InflightInstr &&entry)
    {
        assert(!full());
        const unsigned slot = (head_ + count_) % capacity();
        entries_[slot] = std::move(entry);
        ++count_;
        return slot;
    }

    unsigned headSlot() const
    {
        assert(!empty());
        return head_;
    }

    InflightInstr &head()
    {
        assert(!empty());
        return entries_[head_];
    }
    const InflightInstr &head() const
    {
        assert(!empty());
        return entries_[head_];
    }

    void
    popHead()
    {
        assert(!empty());
        head_ = (head_ + 1) % capacity();
        --count_;
    }

    /**
     * Pop the @p n oldest entries at once (commit-width batching: one
     * head/count update per cycle instead of one per committed uop).
     */
    void
    popHeads(unsigned n)
    {
        assert(n <= count_);
        head_ = (head_ + n) % capacity();
        count_ -= n;
    }

    InflightInstr &at(unsigned slot) { return entries_[slot]; }
    const InflightInstr &at(unsigned slot) const { return entries_[slot]; }

    /**
     * Check whether @p slot currently holds a live entry with sequence
     * number @p seq (used to validate cached slot references).
     */
    bool
    holds(unsigned slot, SeqNum seq) const
    {
        if (empty())
            return false;
        if (entries_[slot].seq != seq)
            return false;
        // Verify the slot lies within [head, head+count).
        const unsigned rel = (slot + capacity() - head_) % capacity();
        return rel < count_;
    }

    /** Whether @p slot currently lies within the live [head, tail) range. */
    bool
    isLiveSlot(unsigned slot) const
    {
        if (empty())
            return false;
        const unsigned rel = (slot + capacity() - head_) % capacity();
        return rel < count_;
    }

    /**
     * Squash all entries strictly younger than @p slot (which must hold a
     * live entry). @p on_squash is invoked for each squashed entry, oldest
     * first.
     */
    template <typename F>
    void
    squashYounger(unsigned slot, F &&on_squash)
    {
        const unsigned rel = (slot + capacity() - head_) % capacity();
        assert(rel < count_);
        const unsigned keep = rel + 1;
        for (unsigned i = keep; i < count_; ++i)
            on_squash(entries_[(head_ + i) % capacity()]);
        count_ = keep;
    }

    /** Visit live entries in age order (oldest first). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (unsigned i = 0; i < count_; ++i)
            fn(entries_[(head_ + i) % capacity()]);
    }

  private:
    std::vector<InflightInstr> entries_;
    unsigned head_ = 0;
    unsigned count_ = 0;
};

}  // namespace stackscope::uarch

#endif  // STACKSCOPE_UARCH_ROB_HPP
