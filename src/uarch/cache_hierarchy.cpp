#include "uarch/cache_hierarchy.hpp"

#include <algorithm>
#include <cassert>

namespace stackscope::uarch {

Uncore::Uncore(const UncoreParams &params)
    : params_(params), l3_(params.l3)
{
    mem_slots_.resize(std::max(1u, params_.mem_queue_slots), 0);
}

Uncore::Result
Uncore::access(Addr addr, Cycle now)
{
    if (l3_.lookup(addr))
        return {now + params_.l3_lat, true};

    // Miss in L3: find the earliest-available memory queue slot (models
    // finite DRAM bandwidth).
    auto slot = std::min_element(mem_slots_.begin(), mem_slots_.end());
    const Cycle request_at = now + params_.l3_lat;
    const Cycle start = std::max(request_at, *slot);
    *slot = start + params_.mem_service;
    l3_.insert(addr);
    return {start + params_.mem_lat, false};
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               Uncore *shared_uncore)
    : params_(params),
      l1i_(params.l1i),
      l1d_(params.l1d),
      l2_(params.l2),
      itlb_(params.itlb),
      dtlb_(params.dtlb),
      prefetcher_(params.prefetch)
{
    if (shared_uncore != nullptr) {
        uncore_ = shared_uncore;
    } else {
        owned_uncore_ = std::make_unique<Uncore>(params.uncore);
        uncore_ = owned_uncore_.get();
    }
    mshr_busy_.resize(std::max(1u, params_.l2_mshrs), 0);
}

AccessResult
CacheHierarchy::missToL2(Addr addr, Cycle now, bool is_ifetch,
                         bool is_prefetch)
{
    if (l2_.lookup(addr)) {
        if (is_ifetch)
            l1i_.insert(addr);
        else if (!is_prefetch)
            l1d_.insert(addr);
        return {now + (params_.l2_lat - params_.l1_lat), false, 2};
    }

    // L2 miss: the request needs a free MSHR before it can go out. This is
    // where prefetch pressure delays later (incl. Icache) misses.
    const Cycle request_at = now + (params_.l2_lat - params_.l1_lat);
    auto mshr = std::min_element(mshr_busy_.begin(), mshr_busy_.end());
    const Cycle start = std::max(request_at, *mshr);
    mshr_wait_cycles_ += start - request_at;

    const Uncore::Result res = uncore_->access(addr, start);
    *mshr = res.done;

    l2_.insert(addr);
    if (is_ifetch)
        l1i_.insert(addr);
    else if (!is_prefetch)
        l1d_.insert(addr);
    return {res.done, false, res.l3_hit ? 3u : 4u};
}

void
CacheHierarchy::trainPrefetcher(Addr addr, Cycle now)
{
    for (Addr target : prefetcher_.onMiss(addr)) {
        if (!l2_.lookup(target, /*update_lru=*/false))
            (void)missToL2(target, now, /*is_ifetch=*/false,
                           /*is_prefetch=*/true);
    }
}

AccessResult
CacheHierarchy::ifetch(Addr pc, Cycle now)
{
    if (params_.perfect_icache)
        return {now + params_.l1_lat, true, 1};
    // A TLB miss delays the fetch; the stall lands in the Icache
    // component, matching the paper's "Icache (and TLB)" taxonomy.
    const Cycle walk = itlb_.access(pc);
    now += walk;
    if (l1i_.lookup(pc)) {
        // Walk delay makes an L1 hit report as a (cheap) miss so the
        // frontend actually stalls for it.
        return {now + params_.l1_lat, walk == 0, 1};
    }
    AccessResult res = missToL2(pc, now + params_.l1_lat,
                                /*is_ifetch=*/true, /*is_prefetch=*/false);
    res.l1_hit = false;
    // Next-line instruction prefetch: sequential code misses once per
    // run, not once per line. The prefetch uses the same timed path (so
    // it competes for MSHRs on an L2 miss) but does not stall fetch.
    const Addr next_line = pc + params_.l1i.line_bytes;
    if (!l1i_.lookup(next_line, /*update_lru=*/false))
        (void)missToL2(next_line, now + params_.l1_lat,
                       /*is_ifetch=*/true, /*is_prefetch=*/false);
    return res;
}

AccessResult
CacheHierarchy::load(Addr addr, Cycle now)
{
    if (params_.perfect_dcache)
        return {now + params_.l1_lat, true, 1};
    const Cycle walk = dtlb_.access(addr);
    now += walk;
    if (l1d_.lookup(addr)) {
        // As for ifetch: a walk-delayed L1 hit reports as a miss so the
        // wait is attributed to the Dcache(+TLB) component.
        return {now + params_.l1_lat, walk == 0, 1};
    }
    AccessResult res = missToL2(addr, now + params_.l1_lat,
                                /*is_ifetch=*/false, /*is_prefetch=*/false);
    res.l1_hit = false;
    trainPrefetcher(addr, now);
    return res;
}

void
CacheHierarchy::store(Addr addr, Cycle now)
{
    if (params_.perfect_dcache)
        return;
    (void)dtlb_.access(addr);
    if (l1d_.lookup(addr))
        return;
    (void)missToL2(addr, now + params_.l1_lat, /*is_ifetch=*/false,
                   /*is_prefetch=*/false);
    trainPrefetcher(addr, now);
}

}  // namespace stackscope::uarch
