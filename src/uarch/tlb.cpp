#include "uarch/tlb.hpp"

#include <algorithm>
#include <cassert>

namespace stackscope::uarch {

Tlb::Tlb(const TlbParams &params)
    : params_(params)
{
    assert(params_.page_bytes > 0);
    num_sets_ = std::max(1u, params_.entries / kWays);
    entries_.resize(static_cast<std::size_t>(num_sets_) * kWays);
    const auto is_pow2 = [](std::uint64_t v) {
        return v != 0 && (v & (v - 1)) == 0;
    };
    pow2_ = is_pow2(params_.page_bytes) && is_pow2(num_sets_);
    if (pow2_) {
        while ((Addr{1} << page_shift_) < params_.page_bytes)
            ++page_shift_;
        set_mask_ = num_sets_ - 1;
    }
}

Cycle
Tlb::access(Addr addr)
{
    if (!params_.enable)
        return 0;
    ++accesses_;
    // Shift/mask fast path; see Cache::lineAddr for the rationale.
    const Addr page =
        pow2_ ? addr >> page_shift_ : addr / params_.page_bytes;
    ++clock_;

    Entry *base = &entries_[static_cast<std::size_t>(
                                pow2_ ? page & set_mask_
                                      : page % num_sets_) *
                            kWays];
    Entry *victim = base;
    for (unsigned w = 0; w < kWays; ++w) {
        if (base[w].page == page) {
            base[w].stamp = clock_;
            return 0;
        }
        if (base[w].stamp < victim->stamp)
            victim = &base[w];
    }
    ++misses_;
    victim->page = page;
    victim->stamp = clock_;
    return params_.miss_latency;
}

void
Tlb::flush()
{
    for (Entry &e : entries_)
        e = Entry{};
    clock_ = 0;
}

}  // namespace stackscope::uarch
