/**
 * @file
 * Homogeneous multi-core simulation with a shared uncore, plus the
 * component-wise stack aggregation of the paper's methodology (§IV,
 * following Heirman et al. [10]: threads behave homogeneously, so stacks
 * are averaged component per component).
 */

#ifndef STACKSCOPE_SIM_MULTICORE_HPP
#define STACKSCOPE_SIM_MULTICORE_HPP

#include <vector>

#include "sim/simulation.hpp"

namespace stackscope::sim {

/** Result of an n-core homogeneous run. */
struct MulticoreResult
{
    std::vector<SimResult> per_core;

    /** Component-wise average of the per-core CPI stacks (CPI units). */
    std::array<stacks::CpiStack, stacks::kNumStages> avg_cpi_stacks{};
    /** Component-wise average of the normalized per-core FLOPS stacks. */
    stacks::FlopsStack avg_flops_fraction{};
    /** Component-wise average of the normalized commit IPC stacks. */
    stacks::CpiStack avg_ipc_fraction{};

    double avg_cpi = 0.0;
    double avg_ipc = 0.0;

    /**
     * Merged validation outcome of all cores (each violation detail is
     * prefixed with the core index); per-core reports stay available in
     * per_core[i].validation.
     */
    validate::ValidationReport validation{};

    /** Socket-level achieved FLOPS (base fraction x socket peak). */
    double socket_flops = 0.0;
    /** Socket-level peak FLOPS. */
    double socket_peak_flops = 0.0;

    const stacks::CpiStack &
    cpiStack(stacks::Stage s) const
    {
        return avg_cpi_stacks[static_cast<std::size_t>(s)];
    }

    /** Socket FLOPS stack in flops/s units (height = socket peak). */
    stacks::FlopsStack socketFlopsStack() const
    {
        return avg_flops_fraction.scaled(socket_peak_flops);
    }

    /** Socket IPC stack scaled to per-core IPC units (height = max IPC). */
    stacks::CpiStack ipcStack(unsigned width) const
    {
        return avg_ipc_fraction.scaled(static_cast<double>(width));
    }
};

/**
 * Run @p num_cores clones of @p trace in lockstep on @p machine, sharing
 * one uncore whose resources are the per-core slice times @p num_cores.
 * Each core's data addresses are offset into a private region (threads of
 * the paper's HPC workloads work on distinct tiles), while code addresses
 * are shared.
 */
MulticoreResult simulateMulticore(const MachineConfig &machine,
                                  const trace::TraceSource &trace,
                                  unsigned num_cores,
                                  const SimOptions &options = {});

}  // namespace stackscope::sim

#endif  // STACKSCOPE_SIM_MULTICORE_HPP
