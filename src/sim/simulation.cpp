#include "sim/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/ooo_core.hpp"
#include "obs/metrics.hpp"
#include "sim/sim_metrics.hpp"
#include "validate/watchdog.hpp"

namespace stackscope::sim {

using stacks::Stage;
using validate::FaultTarget;
using validate::ValidationPolicy;


void
checkObsOptions(const SimOptions &options)
{
    if (options.obs.interval_cycles == 0)
        return;
    if (!options.accounting) {
        throw StackscopeError(ErrorCategory::kConfig,
                              "interval stack snapshots require accounting "
                              "to be enabled");
    }
    if (options.spec_mode == stacks::SpeculationMode::kSpecCounters) {
        throw StackscopeError(
            ErrorCategory::kConfig,
            "interval stack snapshots are incompatible with "
            "spec-counters accounting (stacks are undefined before "
            "finalize)")
            .withContext("spec_mode", "spec-counters");
    }
}

stacks::FlopsStack
SimResult::flopsStack() const
{
    if (cycles == 0)
        return {};
    // Equation 1 generalized to every component: scale by freq * M /
    // cycles so the stack height equals the machine peak FLOPS.
    const double factor = core_peak_flops / static_cast<double>(cycles);
    return flops_cycles.scaled(factor);
}

double
SimResult::achievedFlops() const
{
    return flopsStack()[stacks::FlopsComponent::kBase];
}

stacks::CpiStack
SimResult::ipcStack(unsigned width) const
{
    if (cycles == 0)
        return {};
    // Divide cycle counts by total cycles and multiply by max IPC: the
    // base component becomes the achieved IPC, the height the max IPC.
    const double factor =
        static_cast<double>(width) / static_cast<double>(cycles);
    return cycle_stacks[static_cast<std::size_t>(Stage::kCommit)].scaled(
        factor);
}

SimResult
simulate(const MachineConfig &machine, const trace::TraceSource &trace,
         const SimOptions &options)
{
    core::CoreParams params = machine.core;
    params.spec_mode = options.spec_mode;
    params.accounting_enabled = options.accounting;
    params.batched_accounting = !options.reference_engine;
    if (options.fault &&
        validate::targetOf(options.fault->kind) == FaultTarget::kConfig)
        validate::applyToConfig(*options.fault, params);

    std::unique_ptr<trace::TraceSource> src = trace.clone();
    if (options.fault &&
        validate::targetOf(options.fault->kind) == FaultTarget::kTrace)
        src = validate::wrapTrace(*options.fault, std::move(src));

    core::OooCore core(params, std::move(src));

    checkObsOptions(options);
    std::optional<obs::IntervalAccountant> iacct;
    if (options.obs.interval_cycles != 0)
        iacct.emplace(options.obs.interval_cycles);
    std::optional<obs::PipelineTracer> tracer;
    if (options.obs.trace_events)
        tracer.emplace(options.obs.trace_capacity);
    // The tracer must observe every individual cycle, so idle skip-ahead
    // is illegal under it (it is also off in the reference engine and
    // with a shared uncore; see OooCore::setSkipAheadEnabled).
    if (tracer)
        core.setSkipAheadEnabled(false);

    validate::Watchdog watchdog({options.max_cycles,
                                 options.watchdog_cycles,
                                 options.deadline_cycles,
                                 options.job_timeout_seconds});
    const bool checking =
        options.validation != ValidationPolicy::kOff && options.accounting;
    validate::IntervalValidator interval(options.validation_interval);
    validate::ValidationReport report;
    report.policy = options.validation;

    detail::SimMetrics &metrics = detail::simMetrics();
    metrics.runs.inc();
    const auto run_start = std::chrono::steady_clock::now();

    // Fast-forward (§IV): warm structures, then restart measurement. The
    // watchdog also guards this phase — a hung trace must not spin here.
    const std::uint64_t warmup = options.warmup_instrs.value_or(0);
    bool warmup_truncated = false;
    if (warmup > 0) {
        while (!core.done() &&
               core.stats().instrs_committed < warmup &&
               watchdog.poll(core.absoluteCycles(),
                             core.stats().instrs_committed)) {
            core.setCycleHorizon(watchdog.cycleHorizon());
            core.cycle();
        }
        metrics.warmup_micros.inc(detail::microsSince(run_start));
        if (watchdog.tripped()) {
            // resetMeasurement() never ran: the reported stacks include
            // the warmup phase. Even a plain max-cycles stop must not be
            // a silent truncation here.
            warmup_truncated = true;
            log::warn("sim", "stopped during warmup; stacks include warmup",
                      {{"machine", machine.name},
                       {"cycle", core.cycles()},
                       {"detail", watchdog.snapshot().describe()}});
            report.add(validate::Invariant::kProgress,
                       "stopped during warmup (" +
                           watchdog.snapshot().describe() +
                           "): measurement never started, stacks include "
                           "warmup",
                       core.cycles());
        } else {
            core.resetMeasurement();
        }
    }

    const auto measure_start = std::chrono::steady_clock::now();
    // Skip-ahead ceiling: never jump past a watchdog threshold, an
    // interval-snapshot boundary or a periodic-validation boundary, so a
    // skipping run observes them at exactly the same cycles as a
    // per-cycle run. The boundaries are in measured cycles; the horizon
    // is absolute.
    const Cycle measure_base = core.absoluteCycles() - core.cycles();
    while (!core.done() && !watchdog.tripped()) {
        if (!watchdog.poll(core.absoluteCycles(),
                           core.stats().instrs_committed))
            break;
        Cycle horizon = watchdog.cycleHorizon();
        if (iacct)
            horizon = std::min(horizon,
                               measure_base + iacct->nextBoundary());
        if (checking)
            horizon = std::min(horizon,
                               measure_base + interval.nextCheck());
        core.setCycleHorizon(horizon);
        core.cycle();
        if (tracer)
            tracer->observe(core.cycles() - 1, core.cycleState(),
                            core.stats().squashed_uops);
        if (iacct && iacct->due(core.cycles()))
            iacct->snapshot(core);
        if (checking && interval.due(core.cycles()))
            interval.check(core, report);
    }
    core.finalizeAccounting();
    const std::uint64_t measure_us = detail::microsSince(measure_start);
    metrics.measure_micros.inc(measure_us);

    const auto report_start = std::chrono::steady_clock::now();
    SimResult r;
    r.machine = machine.name;
    r.cycles = core.cycles();
    r.instrs = core.stats().instrs_committed;
    r.cpi = core.cpi();
    r.freq_hz = machine.freqHz();
    r.core_peak_flops = machine.corePeakFlops();
    r.stats = core.stats();
    r.stats.cycles = r.cycles;
    if (options.accounting) {
        for (std::size_t s = 0; s < stacks::kNumStages; ++s) {
            const auto stage = static_cast<Stage>(s);
            r.cycle_stacks[s] = core.accountant(stage).cycles();
            r.cpi_stacks[s] = core.accountant(stage).cpi(r.instrs);
        }
        r.flops_cycles = core.flopsAccountant().cycles();
    }

    if (options.fault &&
        validate::targetOf(options.fault->kind) == FaultTarget::kResult)
        validate::applyToResult(*options.fault, r, options.attempt);

    // A hard deadline (cycle budget / wall clock) is always an error —
    // the job ran away — independent of the validation policy.
    if (watchdog.deadlineExceeded()) {
        metrics.watchdog_fires.inc();
        throw StackscopeError(ErrorCategory::kWatchdog,
                              watchdog.snapshot().describe())
            .withContext("machine", machine.name)
            .withContext("cycles", std::to_string(core.cycles()));
    }

    // A no-retire watchdog trip is a detected deadlock and recorded even
    // with validation off; a max-cycles stop after warmup stays a silent
    // truncation (a trip *during* warmup was already recorded above).
    if (watchdog.deadlocked() && !warmup_truncated) {
        report.add(validate::Invariant::kProgress,
                   watchdog.snapshot().describe(), core.cycles());
    }
    if (watchdog.deadlocked()) {
        metrics.watchdog_fires.inc();
        log::warn("sim", "watchdog fired",
                  {{"machine", machine.name},
                   {"cycle", core.cycles()},
                   {"detail", watchdog.snapshot().describe()}});
    }
    if (checking)
        report.merge(validate::validateResult(r));
    r.validation = std::move(report);

    if (iacct) {
        iacct->finish(core);
        r.intervals = iacct->take();
    }
    if (tracer) {
        for (const validate::Violation &v : r.validation.violations)
            tracer->note(obs::TraceEventKind::kValidation, v.cycle, 1);
        if (watchdog.tripped())
            tracer->note(obs::TraceEventKind::kWatchdog, core.cycles());
        tracer->finish(core.cycles());
        r.events = tracer->take();
    }

    metrics.report_micros.inc(detail::microsSince(report_start));
    metrics.cycles.inc(r.cycles);
    metrics.instrs.inc(r.instrs);
    metrics.violations.inc(r.validation.violations.size());
    if (measure_us > 0) {
        const double secs = static_cast<double>(measure_us) * 1e-6;
        metrics.last_cycles_per_sec.set(static_cast<double>(r.cycles) /
                                        secs);
        metrics.last_instrs_per_sec.set(static_cast<double>(r.instrs) /
                                        secs);
    }
    metrics.peak_rss.set(static_cast<double>(obs::peakRssBytes()));
    metrics.run_seconds.record(
        static_cast<double>(detail::microsSince(run_start)) * 1e-6);

    if (options.validation == ValidationPolicy::kStrict &&
        !r.validation.passed()) {
        throw r.validation.toError()
            .withContext("machine", machine.name)
            .withContext("cycles", std::to_string(r.cycles));
    }
    return r;
}

double
cpiReduction(const MachineConfig &machine, const trace::TraceSource &trace,
             const Idealization &ideal, const SimOptions &options)
{
    const SimResult real = simulate(machine, trace, options);
    const SimResult idealized =
        simulate(applyIdealization(machine, ideal), trace, options);
    return real.cpi - idealized.cpi;
}

}  // namespace stackscope::sim
