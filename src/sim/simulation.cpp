#include "sim/simulation.hpp"

#include "core/ooo_core.hpp"

namespace stackscope::sim {

using stacks::Stage;

stacks::FlopsStack
SimResult::flopsStack() const
{
    if (cycles == 0)
        return {};
    // Equation 1 generalized to every component: scale by freq * M /
    // cycles so the stack height equals the machine peak FLOPS.
    const double factor = core_peak_flops / static_cast<double>(cycles);
    return flops_cycles.scaled(factor);
}

double
SimResult::achievedFlops() const
{
    return flopsStack()[stacks::FlopsComponent::kBase];
}

stacks::CpiStack
SimResult::ipcStack(unsigned width) const
{
    if (cycles == 0)
        return {};
    // Divide cycle counts by total cycles and multiply by max IPC: the
    // base component becomes the achieved IPC, the height the max IPC.
    const double factor =
        static_cast<double>(width) / static_cast<double>(cycles);
    return cycle_stacks[static_cast<std::size_t>(Stage::kCommit)].scaled(
        factor);
}

SimResult
simulate(const MachineConfig &machine, const trace::TraceSource &trace,
         const SimOptions &options)
{
    core::CoreParams params = machine.core;
    params.spec_mode = options.spec_mode;
    params.accounting_enabled = options.accounting;

    core::OooCore core(params, trace.clone());
    if (options.warmup_instrs > 0) {
        while (!core.done() &&
               core.stats().instrs_committed < options.warmup_instrs) {
            core.cycle();
        }
        core.resetMeasurement();
    }
    core.run(options.max_cycles);

    SimResult r;
    r.machine = machine.name;
    r.cycles = core.cycles();
    r.instrs = core.stats().instrs_committed;
    r.cpi = core.cpi();
    r.freq_hz = machine.freqHz();
    r.core_peak_flops = machine.corePeakFlops();
    r.stats = core.stats();
    if (options.accounting) {
        for (std::size_t s = 0; s < stacks::kNumStages; ++s) {
            const auto stage = static_cast<Stage>(s);
            r.cycle_stacks[s] = core.accountant(stage).cycles();
            r.cpi_stacks[s] = core.accountant(stage).cpi(r.instrs);
        }
        r.flops_cycles = core.flopsAccountant().cycles();
    }
    return r;
}

double
cpiReduction(const MachineConfig &machine, const trace::TraceSource &trace,
             const Idealization &ideal, const SimOptions &options)
{
    const SimResult real = simulate(machine, trace, options);
    const SimResult idealized =
        simulate(applyIdealization(machine, ideal), trace, options);
    return real.cpi - idealized.cpi;
}

}  // namespace stackscope::sim
