#include "sim/multicore.hpp"

#include <cassert>
#include <memory>

#include "core/ooo_core.hpp"

namespace stackscope::sim {

namespace {

using stacks::Stage;

/**
 * Decorator that shifts data addresses into a per-core region so
 * homogeneous threads do not alias each other's working set.
 */
class AddressOffsetSource : public trace::TraceSource
{
  public:
    AddressOffsetSource(std::unique_ptr<trace::TraceSource> inner,
                        Addr offset)
        : inner_(std::move(inner)), offset_(offset)
    {
    }

    bool
    next(trace::DynInstr &out) override
    {
        if (!inner_->next(out))
            return false;
        if (trace::isMemory(out.cls))
            out.mem_addr += offset_;
        return true;
    }

    void reset() override { inner_->reset(); }

    std::unique_ptr<trace::TraceSource>
    clone() const override
    {
        return std::make_unique<AddressOffsetSource>(inner_->clone(),
                                                     offset_);
    }

  private:
    std::unique_ptr<trace::TraceSource> inner_;
    Addr offset_;
};

}  // namespace

MulticoreResult
simulateMulticore(const MachineConfig &machine,
                  const trace::TraceSource &trace, unsigned num_cores,
                  const SimOptions &options)
{
    assert(num_cores >= 1);

    // The per-core config carries a per-core slice of the socket uncore;
    // the shared uncore of an n-core run is n slices.
    uarch::UncoreParams shared_params = machine.core.mem.uncore;
    shared_params.l3.size_bytes *= num_cores;
    shared_params.mem_queue_slots *= num_cores;
    uarch::Uncore uncore(shared_params);

    std::vector<std::unique_ptr<core::OooCore>> cores;
    cores.reserve(num_cores);
    for (unsigned i = 0; i < num_cores; ++i) {
        core::CoreParams params = machine.core;
        params.spec_mode = options.spec_mode;
        params.accounting_enabled = options.accounting;
        params.wrong_path_seed = machine.core.wrong_path_seed + i;
        auto src = std::make_unique<AddressOffsetSource>(
            trace.clone(), static_cast<Addr>(i) << 33);
        cores.push_back(std::make_unique<core::OooCore>(params,
                                                        std::move(src),
                                                        &uncore));
    }

    // Lockstep simulation so uncore contention is interleaved fairly.
    // Each core restarts measurement once it passes the warmup window.
    std::vector<bool> warmed(num_cores, options.warmup_instrs == 0);
    bool any_running = true;
    while (any_running) {
        any_running = false;
        for (unsigned i = 0; i < num_cores; ++i) {
            auto &c = cores[i];
            if (!c->done() &&
                (options.max_cycles == 0 ||
                 c->absoluteCycles() < options.max_cycles)) {
                c->cycle();
                any_running = true;
                if (!warmed[i] && c->stats().instrs_committed >=
                                      options.warmup_instrs) {
                    c->resetMeasurement();
                    warmed[i] = true;
                }
            }
        }
    }

    MulticoreResult out;
    out.socket_peak_flops = machine.socketPeakFlops();
    for (auto &c : cores) {
        c->finalizeAccounting();

        SimResult r;
        r.machine = machine.name;
        r.cycles = c->cycles();
        r.instrs = c->stats().instrs_committed;
        r.cpi = c->cpi();
        r.freq_hz = machine.freqHz();
        r.core_peak_flops = machine.corePeakFlops();
        r.stats = c->stats();
        if (options.accounting) {
            for (std::size_t s = 0; s < stacks::kNumStages; ++s) {
                const auto stage = static_cast<Stage>(s);
                r.cycle_stacks[s] = c->accountant(stage).cycles();
                r.cpi_stacks[s] = c->accountant(stage).cpi(r.instrs);
            }
            r.flops_cycles = c->flopsAccountant().cycles();
        }
        out.per_core.push_back(std::move(r));
    }

    // Component-wise aggregation (homogeneous threads, see [10]).
    const double inv = 1.0 / static_cast<double>(num_cores);
    for (const SimResult &r : out.per_core) {
        for (std::size_t s = 0; s < stacks::kNumStages; ++s)
            out.avg_cpi_stacks[s] += r.cpi_stacks[s].scaled(inv);
        out.avg_flops_fraction +=
            r.flops_cycles
                .scaled(r.cycles == 0 ? 0.0 : 1.0 / r.cycles)
                .scaled(inv);
        out.avg_ipc_fraction +=
            r.cycle_stacks[static_cast<std::size_t>(Stage::kCommit)]
                .scaled(r.cycles == 0 ? 0.0 : 1.0 / r.cycles)
                .scaled(inv);
        out.avg_cpi += r.cpi * inv;
        out.avg_ipc += r.ipc() * inv;
    }
    out.socket_flops =
        out.avg_flops_fraction[stacks::FlopsComponent::kBase] *
        out.socket_peak_flops;
    return out;
}

}  // namespace stackscope::sim
