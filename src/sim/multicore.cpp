#include "sim/multicore.hpp"

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/ooo_core.hpp"
#include "obs/metrics.hpp"
#include "sim/sim_metrics.hpp"
#include "validate/watchdog.hpp"

namespace stackscope::sim {

namespace {

using stacks::Stage;
using validate::FaultTarget;
using validate::ValidationPolicy;

/**
 * Decorator that shifts data addresses into a per-core region so
 * homogeneous threads do not alias each other's working set.
 */
class AddressOffsetSource : public trace::TraceSource
{
  public:
    AddressOffsetSource(std::unique_ptr<trace::TraceSource> inner,
                        Addr offset)
        : inner_(std::move(inner)), offset_(offset)
    {
    }

    bool
    next(trace::DynInstr &out) override
    {
        if (!inner_->next(out))
            return false;
        if (trace::isMemory(out.cls))
            out.mem_addr += offset_;
        return true;
    }

    void reset() override { inner_->reset(); }

    std::unique_ptr<trace::TraceSource>
    clone() const override
    {
        return std::make_unique<AddressOffsetSource>(inner_->clone(),
                                                     offset_);
    }

  private:
    std::unique_ptr<trace::TraceSource> inner_;
    Addr offset_;
};

}  // namespace

MulticoreResult
simulateMulticore(const MachineConfig &machine,
                  const trace::TraceSource &trace, unsigned num_cores,
                  const SimOptions &options)
{
    if (num_cores < 1) {
        throw StackscopeError(ErrorCategory::kConfig,
                              "simulateMulticore requires at least one core")
            .withContext("cores", std::to_string(num_cores));
    }

    // The per-core config carries a per-core slice of the socket uncore;
    // the shared uncore of an n-core run is n slices.
    uarch::UncoreParams shared_params = machine.core.mem.uncore;
    shared_params.l3.size_bytes *= num_cores;
    shared_params.mem_queue_slots *= num_cores;
    uarch::Uncore uncore(shared_params);

    std::vector<std::unique_ptr<core::OooCore>> cores;
    cores.reserve(num_cores);
    for (unsigned i = 0; i < num_cores; ++i) {
        core::CoreParams params = machine.core;
        params.spec_mode = options.spec_mode;
        params.accounting_enabled = options.accounting;
        // Batched accounting is per-core and legal under lockstep; idle
        // skip-ahead is not (shared-uncore timing), and the core disables
        // it itself when constructed with a shared uncore.
        params.batched_accounting = !options.reference_engine;
        params.wrong_path_seed = machine.core.wrong_path_seed + i;
        if (options.fault &&
            validate::targetOf(options.fault->kind) == FaultTarget::kConfig)
            validate::applyToConfig(*options.fault, params);
        std::unique_ptr<trace::TraceSource> src =
            std::make_unique<AddressOffsetSource>(
                trace.clone(), static_cast<Addr>(i) << 33);
        if (options.fault &&
            validate::targetOf(options.fault->kind) == FaultTarget::kTrace)
            src = validate::wrapTrace(*options.fault, std::move(src));
        cores.push_back(std::make_unique<core::OooCore>(params,
                                                        std::move(src),
                                                        &uncore));
    }

    checkObsOptions(options);
    std::vector<std::optional<obs::IntervalAccountant>> iaccts(num_cores);
    std::vector<std::optional<obs::PipelineTracer>> tracers(num_cores);
    for (unsigned i = 0; i < num_cores; ++i) {
        if (options.obs.interval_cycles != 0)
            iaccts[i].emplace(options.obs.interval_cycles);
        if (options.obs.trace_events)
            tracers[i].emplace(options.obs.trace_capacity);
    }

    const bool checking =
        options.validation != ValidationPolicy::kOff && options.accounting;
    const std::uint64_t warmup = options.warmup_instrs.value_or(0);
    std::vector<validate::Watchdog> watchdogs(
        num_cores,
        validate::Watchdog({options.max_cycles, options.watchdog_cycles,
                            options.deadline_cycles,
                            options.job_timeout_seconds}));
    std::vector<validate::IntervalValidator> intervals(
        num_cores,
        validate::IntervalValidator(options.validation_interval));
    std::vector<validate::ValidationReport> reports(num_cores);

    detail::SimMetrics &metrics = detail::simMetrics();
    metrics.runs.inc();
    const auto run_start = std::chrono::steady_clock::now();

    // Lockstep simulation so uncore contention is interleaved fairly.
    // Each core restarts measurement once it passes the warmup window; a
    // core whose watchdog trips is parked while the others finish.
    std::vector<bool> warmed(num_cores, warmup == 0);
    bool any_running = true;
    while (any_running) {
        any_running = false;
        for (unsigned i = 0; i < num_cores; ++i) {
            auto &c = cores[i];
            if (c->done() || watchdogs[i].tripped())
                continue;
            if (!watchdogs[i].poll(c->absoluteCycles(),
                                   c->stats().instrs_committed))
                continue;
            c->cycle();
            any_running = true;
            if (!warmed[i] &&
                c->stats().instrs_committed >= warmup) {
                c->resetMeasurement();
                warmed[i] = true;
            }
            // Observability covers the measured window only; cycles() > 0
            // also skips the reset cycle itself.
            if (warmed[i] && c->cycles() > 0) {
                if (tracers[i])
                    tracers[i]->observe(c->cycles() - 1, c->cycleState(),
                                        c->stats().squashed_uops);
                if (iaccts[i] && iaccts[i]->due(c->cycles()))
                    iaccts[i]->snapshot(*c);
            }
            if (checking && warmed[i] && intervals[i].due(c->cycles()))
                intervals[i].check(*c, reports[i]);
        }
    }

    // The lockstep loop interleaves warmup and measurement across cores,
    // so the whole loop counts as the measure phase.
    const std::uint64_t measure_us = detail::microsSince(run_start);
    metrics.measure_micros.inc(measure_us);

    const auto report_start = std::chrono::steady_clock::now();
    MulticoreResult out;
    out.validation.policy = options.validation;
    out.socket_peak_flops = machine.socketPeakFlops();
    for (unsigned i = 0; i < num_cores; ++i) {
        auto &c = cores[i];
        c->finalizeAccounting();

        SimResult r;
        r.machine = machine.name;
        r.cycles = c->cycles();
        r.instrs = c->stats().instrs_committed;
        r.cpi = c->cpi();
        r.freq_hz = machine.freqHz();
        r.core_peak_flops = machine.corePeakFlops();
        r.stats = c->stats();
        r.stats.cycles = r.cycles;
        if (options.accounting) {
            for (std::size_t s = 0; s < stacks::kNumStages; ++s) {
                const auto stage = static_cast<Stage>(s);
                r.cycle_stacks[s] = c->accountant(stage).cycles();
                r.cpi_stacks[s] = c->accountant(stage).cpi(r.instrs);
            }
            r.flops_cycles = c->flopsAccountant().cycles();
        }

        if (options.fault &&
            validate::targetOf(options.fault->kind) == FaultTarget::kResult) {
            validate::FaultSpec per_core = *options.fault;
            per_core.seed += i;
            validate::applyToResult(per_core, r, options.attempt);
        }

        if (watchdogs[i].deadlineExceeded()) {
            metrics.watchdog_fires.inc();
            throw StackscopeError(ErrorCategory::kWatchdog,
                                  watchdogs[i].snapshot().describe())
                .withContext("machine", machine.name)
                .withContext("core", std::to_string(i))
                .withContext("cycles", std::to_string(r.cycles));
        }

        validate::ValidationReport &rep = reports[i];
        rep.policy = options.validation;
        if (!warmed[i] && watchdogs[i].tripped()) {
            // Mirrors simulate(): a watchdog stop before the warmup window
            // closed means resetMeasurement() never ran, so this core's
            // stacks are warmup-polluted — never a silent truncation.
            rep.add(validate::Invariant::kProgress,
                    "stopped during warmup (" +
                        watchdogs[i].snapshot().describe() +
                        "): measurement never started, stacks include "
                        "warmup",
                    r.cycles);
        } else if (watchdogs[i].deadlocked()) {
            rep.add(validate::Invariant::kProgress,
                    watchdogs[i].snapshot().describe(), r.cycles);
        }
        if (watchdogs[i].deadlocked()) {
            metrics.watchdog_fires.inc();
            log::warn("sim", "watchdog fired",
                      {{"machine", machine.name},
                       {"core", i},
                       {"cycle", r.cycles},
                       {"detail", watchdogs[i].snapshot().describe()}});
        }
        if (checking)
            rep.merge(validate::validateResult(r));
        r.validation = std::move(rep);

        if (iaccts[i]) {
            iaccts[i]->finish(*c);
            r.intervals = iaccts[i]->take();
        }
        if (tracers[i]) {
            for (const validate::Violation &v : r.validation.violations)
                tracers[i]->note(obs::TraceEventKind::kValidation, v.cycle,
                                 1);
            if (watchdogs[i].tripped())
                tracers[i]->note(obs::TraceEventKind::kWatchdog,
                                 c->cycles());
            tracers[i]->finish(c->cycles());
            r.events = tracers[i]->take();
        }

        for (const validate::Violation &v : r.validation.violations) {
            out.validation.add(v.invariant,
                               "core " + std::to_string(i) + ": " + v.detail,
                               v.cycle);
        }
        out.validation.checks_run += r.validation.checks_run;

        out.per_core.push_back(std::move(r));
    }

    // Component-wise aggregation (homogeneous threads, see [10]).
    const double inv = 1.0 / static_cast<double>(num_cores);
    for (const SimResult &r : out.per_core) {
        for (std::size_t s = 0; s < stacks::kNumStages; ++s)
            out.avg_cpi_stacks[s] += r.cpi_stacks[s].scaled(inv);
        out.avg_flops_fraction +=
            r.flops_cycles
                .scaled(r.cycles == 0 ? 0.0 : 1.0 / r.cycles)
                .scaled(inv);
        out.avg_ipc_fraction +=
            r.cycle_stacks[static_cast<std::size_t>(Stage::kCommit)]
                .scaled(r.cycles == 0 ? 0.0 : 1.0 / r.cycles)
                .scaled(inv);
        out.avg_cpi += r.cpi * inv;
        out.avg_ipc += r.ipc() * inv;
    }
    out.socket_flops =
        out.avg_flops_fraction[stacks::FlopsComponent::kBase] *
        out.socket_peak_flops;

    std::uint64_t total_cycles = 0;
    std::uint64_t total_instrs = 0;
    for (const SimResult &r : out.per_core) {
        total_cycles += r.cycles;
        total_instrs += r.instrs;
    }
    metrics.report_micros.inc(detail::microsSince(report_start));
    metrics.cycles.inc(total_cycles);
    metrics.instrs.inc(total_instrs);
    metrics.violations.inc(out.validation.violations.size());
    if (measure_us > 0) {
        const double secs = static_cast<double>(measure_us) * 1e-6;
        metrics.last_cycles_per_sec.set(static_cast<double>(total_cycles) /
                                        secs);
        metrics.last_instrs_per_sec.set(static_cast<double>(total_instrs) /
                                        secs);
    }
    metrics.peak_rss.set(static_cast<double>(obs::peakRssBytes()));
    metrics.run_seconds.record(
        static_cast<double>(detail::microsSince(run_start)) * 1e-6);

    if (options.validation == ValidationPolicy::kStrict &&
        !out.validation.passed()) {
        throw out.validation.toError()
            .withContext("machine", machine.name)
            .withContext("cores", std::to_string(num_cores));
    }
    return out;
}

}  // namespace stackscope::sim
