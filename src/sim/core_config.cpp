#include "sim/core_config.hpp"

namespace stackscope::sim {

std::string
Idealization::label()
    const
{
    if (!any())
        return "all real";
    std::string out;
    auto append = [&](const char *part) {
        if (!out.empty())
            out += " + ";
        out += part;
    };
    if (perfect_icache)
        append("perfect I$");
    if (perfect_dcache)
        append("perfect D$");
    if (perfect_bpred)
        append("perfect bpred");
    if (single_cycle_alu)
        append("1-cycle ALU");
    return out;
}

MachineConfig
applyIdealization(MachineConfig machine, const Idealization &ideal)
{
    machine.core.mem.perfect_icache |= ideal.perfect_icache;
    machine.core.mem.perfect_dcache |= ideal.perfect_dcache;
    machine.core.bpred.perfect |= ideal.perfect_bpred;
    machine.core.fu.ideal_single_cycle_alu |= ideal.single_cycle_alu;
    if (ideal.any())
        machine.name += " (" + ideal.label() + ")";
    return machine;
}

}  // namespace stackscope::sim
