#include "sim/presets.hpp"

#include <stdexcept>

namespace stackscope::sim {

MachineConfig
bdwConfig()
{
    MachineConfig m;
    m.name = "BDW";
    m.freq_ghz = 2.2;
    m.socket_cores = 18;

    core::CoreParams &c = m.core;
    c.fetch_width = 4;
    c.dispatch_width = 4;
    c.issue_width = 6;
    c.commit_width = 4;
    c.rob_size = 192;
    c.rs_size = 60;
    c.fetch_queue_size = 16;
    c.frontend_depth = 8;
    c.flops_vec_lanes = 8;  // AVX2: 8 single-precision lanes

    c.fu.alu_units = 4;
    c.fu.mul_units = 1;
    c.fu.div_units = 1;
    c.fu.load_ports = 2;
    c.fu.store_ports = 1;
    c.fu.branch_units = 2;
    c.fu.fp_units = 2;
    c.fu.vpu_units = 2;
    c.fu.lat_mul = 3;
    c.fu.lat_div = 22;
    c.fu.lat_fp_add = 3;
    c.fu.lat_fp_mul = 3;
    c.fu.lat_fp_div = 16;
    c.fu.lat_vec_fma = 5;
    c.fu.lat_vec_arith = 4;
    c.fu.lat_vec_other = 3;

    c.bpred.gshare_bits = 14;
    c.bpred.bimodal_bits = 13;
    c.bpred.chooser_bits = 12;
    c.bpred.history_bits = 12;

    c.mem.l1i = {32 << 10, 8, 64};
    c.mem.l1d = {32 << 10, 8, 64};
    c.mem.l2 = {256 << 10, 8, 64};
    c.mem.l1_lat = 4;
    c.mem.l2_lat = 12;
    c.mem.l2_mshrs = 10;
    c.mem.prefetch.enable = true;
    c.mem.prefetch.degree = 4;
    c.mem.prefetch.confidence_threshold = 2;

    // Uncore scaled per core for an 18-core socket: 45 MB LLC / 18, and a
    // per-core slice of the socket memory bandwidth.
    c.mem.uncore.l3 = {2560 << 10, 16, 64};
    c.mem.uncore.l3_lat = 30;
    c.mem.uncore.mem_lat = 170;
    c.mem.uncore.mem_queue_slots = 4;
    c.mem.uncore.mem_service = 55;
    return m;
}

MachineConfig
knlConfig()
{
    MachineConfig m;
    m.name = "KNL";
    m.freq_ghz = 1.4;
    m.socket_cores = 68;

    core::CoreParams &c = m.core;
    c.fetch_width = 2;
    c.dispatch_width = 2;
    c.issue_width = 4;
    c.commit_width = 2;
    c.rob_size = 72;
    c.rs_size = 24;
    c.fetch_queue_size = 10;
    c.frontend_depth = 10;
    c.flops_vec_lanes = 16;  // AVX512

    c.fu.alu_units = 2;
    c.fu.mul_units = 1;
    c.fu.div_units = 1;
    c.fu.load_ports = 2;
    c.fu.store_ports = 1;
    c.fu.branch_units = 1;
    c.fu.fp_units = 2;
    c.fu.vpu_units = 2;
    c.fu.lat_mul = 5;
    c.fu.lat_div = 32;
    c.fu.lat_fp_add = 6;
    c.fu.lat_fp_mul = 6;
    c.fu.lat_fp_div = 32;
    c.fu.lat_vec_fma = 6;
    c.fu.lat_vec_arith = 6;
    c.fu.lat_vec_other = 2;

    // Smaller, less capable predictor than the big cores.
    c.bpred.gshare_bits = 12;
    c.bpred.bimodal_bits = 11;
    c.bpred.chooser_bits = 10;
    c.bpred.history_bits = 8;

    c.mem.l1i = {32 << 10, 8, 64};
    c.mem.l1d = {32 << 10, 8, 64};
    c.mem.l2 = {512 << 10, 16, 64};  // half of the 1 MB per-tile L2
    c.mem.l1_lat = 4;
    c.mem.l2_lat = 17;
    c.mem.l2_mshrs = 8;
    c.mem.prefetch.enable = true;
    c.mem.prefetch.degree = 4;
    c.mem.prefetch.confidence_threshold = 2;

    // No conventional L3; model the MCDRAM-side cache slice per core, with
    // generous bandwidth (that is KNL's selling point).
    c.mem.uncore.l3 = {4 << 20, 16, 64};
    c.mem.uncore.l3_lat = 55;
    c.mem.uncore.mem_lat = 230;
    c.mem.uncore.mem_queue_slots = 4;
    c.mem.uncore.mem_service = 30;
    return m;
}

MachineConfig
skxConfig()
{
    MachineConfig m;
    m.name = "SKX";
    m.freq_ghz = 2.4;
    m.socket_cores = 26;

    core::CoreParams &c = m.core;
    c.fetch_width = 4;
    c.dispatch_width = 4;
    c.issue_width = 6;
    c.commit_width = 4;
    c.rob_size = 224;
    c.rs_size = 60;
    c.fetch_queue_size = 16;
    c.frontend_depth = 8;
    c.flops_vec_lanes = 16;  // AVX512

    c.fu.alu_units = 4;
    c.fu.mul_units = 1;
    c.fu.div_units = 1;
    c.fu.load_ports = 2;
    c.fu.store_ports = 1;
    c.fu.branch_units = 2;
    c.fu.fp_units = 2;
    c.fu.vpu_units = 2;
    c.fu.lat_mul = 3;
    c.fu.lat_div = 22;
    c.fu.lat_fp_add = 4;
    c.fu.lat_fp_mul = 4;
    c.fu.lat_fp_div = 14;
    c.fu.lat_vec_fma = 4;
    c.fu.lat_vec_arith = 4;
    c.fu.lat_vec_other = 3;

    c.bpred.gshare_bits = 15;
    c.bpred.bimodal_bits = 14;
    c.bpred.chooser_bits = 13;
    c.bpred.history_bits = 14;

    c.mem.l1i = {32 << 10, 8, 64};
    c.mem.l1d = {32 << 10, 8, 64};
    c.mem.l2 = {1 << 20, 16, 64};
    c.mem.l1_lat = 4;
    c.mem.l2_lat = 14;
    c.mem.l2_mshrs = 12;
    c.mem.prefetch.enable = true;
    c.mem.prefetch.degree = 4;
    c.mem.prefetch.confidence_threshold = 2;

    c.mem.uncore.l3 = {1408 << 10, 11, 64};
    c.mem.uncore.l3_lat = 34;
    c.mem.uncore.mem_lat = 190;
    c.mem.uncore.mem_queue_slots = 4;
    c.mem.uncore.mem_service = 40;
    return m;
}

MachineConfig
machineByName(const std::string &name)
{
    if (name == "bdw")
        return bdwConfig();
    if (name == "knl")
        return knlConfig();
    if (name == "skx")
        return skxConfig();
    throw std::out_of_range("unknown machine '" + name +
                            "' (valid: bdw, knl, skx)");
}

std::vector<std::string>
allMachineNames()
{
    return {"bdw", "knl", "skx"};
}

}  // namespace stackscope::sim
