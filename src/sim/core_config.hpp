/**
 * @file
 * Machine-level configuration: a core plus socket-level context (clock
 * frequency and socket core count for uncore scaling and peak-FLOPS
 * arithmetic), and the idealization knobs of the paper's methodology (§IV).
 */

#ifndef STACKSCOPE_SIM_CORE_CONFIG_HPP
#define STACKSCOPE_SIM_CORE_CONFIG_HPP

#include <string>

#include "core/ooo_core.hpp"

namespace stackscope::sim {

/** A named machine: one core configuration in its socket context. */
struct MachineConfig
{
    std::string name = "machine";
    core::CoreParams core{};
    double freq_ghz = 2.4;
    /**
     * Cores per socket. Uncore resources in core.mem.uncore are already
     * expressed *per core* (i.e., divided by this count, the paper's §IV
     * loaded-socket trick); the count is used to scale peak FLOPS back to
     * socket level.
     */
    unsigned socket_cores = 18;

    double freqHz() const { return freq_ghz * 1e9; }

    /** Peak flops/s of one core: 2 * vpu_units * vec_lanes * freq. */
    double
    corePeakFlops() const
    {
        return 2.0 * core.fu.vpu_units * core.flops_vec_lanes * freqHz();
    }

    /** Peak flops/s of the whole socket. */
    double socketPeakFlops() const
    {
        return corePeakFlops() * socket_cores;
    }
};

/**
 * Structure-idealization switches (§IV): perfect L1 caches, perfect branch
 * prediction, and single-cycle arithmetic.
 */
struct Idealization
{
    bool perfect_icache = false;
    bool perfect_dcache = false;
    bool perfect_bpred = false;
    bool single_cycle_alu = false;

    bool
    any() const
    {
        return perfect_icache || perfect_dcache || perfect_bpred ||
               single_cycle_alu;
    }

    /** Short label like "perfect D$ + perfect bpred" for reports. */
    std::string label() const;
};

/** Return @p machine with @p ideal applied to the relevant structures. */
MachineConfig applyIdealization(MachineConfig machine,
                                const Idealization &ideal);

}  // namespace stackscope::sim

#endif  // STACKSCOPE_SIM_CORE_CONFIG_HPP
