/**
 * @file
 * Single-core simulation driver: run a trace on a machine configuration
 * and collect every stack plus summary statistics.
 */

#ifndef STACKSCOPE_SIM_SIMULATION_HPP
#define STACKSCOPE_SIM_SIMULATION_HPP

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "obs/interval.hpp"
#include "obs/obs_options.hpp"
#include "obs/trace_events.hpp"
#include "sim/core_config.hpp"
#include "stacks/stack.hpp"
#include "trace/trace_source.hpp"
#include "validate/fault_injection.hpp"
#include "validate/invariants.hpp"

namespace stackscope::sim {

/** Run-time options independent of the machine. */
struct SimOptions
{
    stacks::SpeculationMode spec_mode = stacks::SpeculationMode::kOracle;
    bool accounting = true;
    /**
     * Select the per-cycle reference accounting engine instead of the
     * default batched one (CLI `--engine reference`). The reference
     * engine ticks every accountant every cycle and never skips ahead;
     * it exists as the golden baseline for the bit-identity suite and
     * for bench/simspeed (docs/performance.md).
     */
    bool reference_engine = false;
    /** Safety valve; 0 = unlimited. Truncates the run without error. */
    Cycle max_cycles = 0;
    /**
     * Instructions executed before measurement starts (caches and
     * predictor stay warm, counters reset) — the paper's fast-forward
     * methodology (§IV). std::nullopt means no warmup; the CLI defaults
     * this to half the measured instruction count.
     */
    std::optional<std::uint64_t> warmup_instrs{};
    /**
     * Runtime invariant checking: kOff skips all checks, kWarn records
     * violations in SimResult::validation, kStrict additionally raises
     * StackscopeError (category kValidation / kWatchdog).
     */
    validate::ValidationPolicy validation = validate::ValidationPolicy::kOff;
    /** Measured-cycle period of the in-flight periodic checks. */
    Cycle validation_interval = 8192;
    /**
     * No-retire watchdog window: abort (with a diagnostic snapshot in the
     * validation report) when no instruction commits for this many
     * cycles. 0 disables deadlock detection.
     */
    Cycle watchdog_cycles = 0;
    /**
     * Hard per-job cycle budget: unlike max_cycles, crossing it raises a
     * kWatchdog error (regardless of the validation policy) instead of
     * silently truncating. 0 disables it.
     */
    Cycle deadline_cycles = 0;
    /**
     * Hard per-job wall-clock deadline in seconds; 0 disables it. Same
     * error semantics as deadline_cycles.
     */
    double job_timeout_seconds = 0.0;
    /**
     * Zero-based retry attempt of the enclosing batch job. Runtime state
     * set by the BatchRunner retry loop, not a configuration knob: it is
     * excluded from report serialization and job-spec hashing so retried
     * and first-try runs stay byte-identical when they produce the same
     * result. Transient fault kinds consult it.
     */
    unsigned attempt = 0;
    /** Deterministic fault to inject, for validating the validators. */
    std::optional<validate::FaultSpec> fault{};
    /**
     * Observability: interval stack snapshots and pipeline event tracing
     * (docs/observability.md). Intervals require accounting and a spec
     * mode other than kSpecCounters (kConfig error otherwise).
     */
    obs::ObsOptions obs{};
};

/** Everything a single-core run produces. */
struct SimResult
{
    std::string machine;
    Cycle cycles = 0;
    std::uint64_t instrs = 0;
    double cpi = 0.0;
    double freq_hz = 0.0;
    double core_peak_flops = 0.0;

    /** CPI stacks (CPI units) indexed by stacks::Stage. */
    std::array<stacks::CpiStack, stacks::kNumStages> cpi_stacks{};
    /** The same stacks in raw cycle counts. */
    std::array<stacks::CpiStack, stacks::kNumStages> cycle_stacks{};
    /** FLOPS stack in cycle counts. */
    stacks::FlopsStack flops_cycles{};

    core::CoreStats stats{};

    /**
     * Outcome of the invariant checks that ran on this result (empty
     * when SimOptions::validation was kOff and no watchdog fired).
     */
    validate::ValidationReport validation{};

    /**
     * Interval stack time-series (enabled() false unless
     * SimOptions::obs.interval_cycles was set).
     */
    obs::IntervalSeries intervals{};

    /**
     * Pipeline event log (enabled false unless SimOptions::obs.trace_events
     * was set).
     */
    obs::EventLog events{};

    double ipc() const { return cpi == 0.0 ? 0.0 : 1.0 / cpi; }

    const stacks::CpiStack &
    cpiStack(stacks::Stage s) const
    {
        return cpi_stacks[static_cast<std::size_t>(s)];
    }

    /** FLOPS stack in flops/s units (Equation 1). */
    stacks::FlopsStack flopsStack() const;

    /** Achieved flops/s of this core. */
    double achievedFlops() const;

    /**
     * IPC stack: the commit-stage cycle stack rescaled so the stack height
     * is the maximum IPC and the base component the achieved IPC (§V-B).
     */
    stacks::CpiStack ipcStack(unsigned width) const;
};

/**
 * Simulate @p trace (cloned; the argument is not consumed) on @p machine.
 */
SimResult simulate(const MachineConfig &machine,
                   const trace::TraceSource &trace,
                   const SimOptions &options = {});

/**
 * Throw StackscopeError(kConfig) when @p options combines observability
 * switches with a run mode they cannot work under (interval snapshots
 * with accounting off, or with SpeculationMode::kSpecCounters whose
 * stacks are undefined before finalize()). Called by both simulation
 * drivers; exposed so front-ends can fail fast before building jobs.
 */
void checkObsOptions(const SimOptions &options);

/**
 * Convenience: CPI delta of idealizing @p ideal relative to the
 * all-real configuration (Table I methodology). Positive = improvement.
 */
double cpiReduction(const MachineConfig &machine,
                    const trace::TraceSource &trace,
                    const Idealization &ideal,
                    const SimOptions &options = {});

}  // namespace stackscope::sim

#endif  // STACKSCOPE_SIM_SIMULATION_HPP
