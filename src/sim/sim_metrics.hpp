/**
 * @file
 * Internal: shared metric handles for the two simulation drivers
 * (sim/simulation.cpp and sim/multicore.cpp). Not part of the public sim
 * API — both drivers report into the same `sim.*` series so front-ends
 * see one aggregate regardless of core count.
 */

#ifndef STACKSCOPE_SIM_SIM_METRICS_HPP
#define STACKSCOPE_SIM_SIM_METRICS_HPP

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace stackscope::sim::detail {

struct SimMetrics
{
    obs::Counter runs;
    obs::Counter cycles;
    obs::Counter instrs;
    obs::Counter warmup_micros;
    obs::Counter measure_micros;
    obs::Counter report_micros;
    obs::Counter violations;
    obs::Counter watchdog_fires;
    obs::Gauge last_cycles_per_sec;
    obs::Gauge last_instrs_per_sec;
    obs::Gauge peak_rss;
    obs::Histogram run_seconds;
};

inline SimMetrics &
simMetrics()
{
    static SimMetrics m = [] {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        SimMetrics s;
        s.runs = reg.counter("sim.runs_total");
        s.cycles = reg.counter("sim.simulated_cycles_total");
        s.instrs = reg.counter("sim.instrs_committed_total");
        s.warmup_micros = reg.counter("sim.warmup_micros_total");
        s.measure_micros = reg.counter("sim.measure_micros_total");
        s.report_micros = reg.counter("sim.report_micros_total");
        s.violations = reg.counter("sim.validation_violations_total");
        s.watchdog_fires = reg.counter("sim.watchdog_fires_total");
        s.last_cycles_per_sec = reg.gauge("sim.last_cycles_per_sec");
        s.last_instrs_per_sec = reg.gauge("sim.last_instrs_per_sec");
        s.peak_rss = reg.gauge("sim.peak_rss_bytes");
        s.run_seconds = reg.histogram(
            "sim.run_seconds", {0.001, 0.01, 0.1, 1.0, 10.0, 100.0});
        return s;
    }();
    return m;
}

inline std::uint64_t
microsSince(std::chrono::steady_clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

}  // namespace stackscope::sim::detail

#endif  // STACKSCOPE_SIM_SIM_METRICS_HPP
