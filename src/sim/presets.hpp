/**
 * @file
 * Machine presets inspired by the cores of the paper's evaluation (§IV):
 * Intel Broadwell (BDW, 4-wide OoO), Knights Landing (KNL, 2-wide OoO) and
 * Skylake-SP (SKX, 4-wide OoO with AVX512).
 *
 * Uncore resources (shared cache slice, memory bandwidth) are divided by
 * the socket core count, mimicking a fully loaded socket exactly as the
 * paper does.
 */

#ifndef STACKSCOPE_SIM_PRESETS_HPP
#define STACKSCOPE_SIM_PRESETS_HPP

#include <string>
#include <vector>

#include "sim/core_config.hpp"

namespace stackscope::sim {

/** Broadwell-inspired: 4-wide OoO, AVX2, 18-core socket. */
MachineConfig bdwConfig();

/** Knights Landing-inspired: 2-wide OoO, AVX512, 68-core socket. */
MachineConfig knlConfig();

/** Skylake-SP-inspired: 4-wide OoO, AVX512, 26-core socket. */
MachineConfig skxConfig();

/** Look up a preset by (case-sensitive) name: "bdw", "knl" or "skx". */
MachineConfig machineByName(const std::string &name);

/** All preset names. */
std::vector<std::string> allMachineNames();

}  // namespace stackscope::sim

#endif  // STACKSCOPE_SIM_PRESETS_HPP
