/**
 * @file
 * Runtime validation of the algebraic laws every stack must obey.
 *
 * The paper's central claim is that a CPI stack is only meaningful when it
 * is *conservative*: each stage's components sum to total cycles (Table
 * II), frontend components shrink and backend components grow monotonically
 * from dispatch to commit (§III), the base component is equal across
 * stages (§III-A width normalization), and the FLOPS stack accounts every
 * issue slot of peak (Equation 1). This module checks those laws at run
 * time — both periodically while a simulation is in flight and on the
 * completed result — so that accounting bugs fail loudly instead of
 * producing plausible-looking but wrong stacks.
 */

#ifndef STACKSCOPE_VALIDATE_INVARIANTS_HPP
#define STACKSCOPE_VALIDATE_INVARIANTS_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace stackscope::core {
class OooCore;
}
namespace stackscope::sim {
struct SimResult;
}

namespace stackscope::validate {

/** How much checking a run performs and what a violation does. */
enum class ValidationPolicy
{
    kOff,     ///< no checks (the historical behaviour)
    kWarn,    ///< run checks, record violations in the report
    kStrict,  ///< run checks, violations raise StackscopeError
};

std::string_view toString(ValidationPolicy p);

/** Parse "off" / "warn" / "strict"; nullopt for anything else. */
std::optional<ValidationPolicy> parsePolicy(std::string_view text);

/** The individual laws we can check. */
enum class Invariant : unsigned
{
    kStackSum,          ///< Table II: stage cycle stack sums to total cycles
    kFlopsSum,          ///< Eq. 1: FLOPS stack sums to total cycles
    kNonNegative,       ///< no component is negative
    kFinite,            ///< no component is NaN or infinite
    kFrontendOrdering,  ///< §III: frontend mass dispatch >= issue >= commit
    kBackendOrdering,   ///< §III: backend mass commit >= issue >= dispatch
    kBaseEquality,      ///< §III-A: base component equal across stages
    kCpiConsistency,    ///< CPI stacks == cycle stacks / instructions
    kProgress,          ///< watchdog: the run kept retiring instructions
    kStoreOrder,        ///< core: pending-store queue strictly seq-sorted
    kCount,
};

std::string_view toString(Invariant inv);

/** One detected violation. */
struct Violation
{
    Invariant invariant = Invariant::kCount;
    /** Human-readable diagnostic with the offending numbers. */
    std::string detail;
    /** Measured cycle at which the violation was detected (0 = end of run). */
    Cycle cycle = 0;
};

/** Outcome of all checks that ran on one simulation. */
struct ValidationReport
{
    ValidationPolicy policy = ValidationPolicy::kOff;
    /** Number of individual invariant evaluations performed. */
    std::uint64_t checks_run = 0;
    std::vector<Violation> violations;

    bool passed() const { return violations.empty(); }

    void
    add(Invariant inv, std::string detail, Cycle cycle = 0)
    {
        violations.push_back({inv, std::move(detail), cycle});
    }

    /** Fold @p other into this report (per-core / per-phase merging). */
    void merge(const ValidationReport &other);

    /** True when @p inv appears among the violations. */
    bool contains(Invariant inv) const;

    /** Multi-line diagnostic naming every violated invariant. */
    std::string summary() const;

    /** Convert a failed report into a structured error. */
    StackscopeError toError() const;
};

/** Comparison slack for the end-of-run checks (cycle-count units). */
struct Tolerances
{
    /** Stack-sum / FLOPS-sum conservation: rel * cycles + abs. */
    double sum_rel = 0.002;
    double sum_abs = 2.0;
    /** Cross-stage ordering: rel * cycles + cpi_abs * instrs + abs. */
    double order_rel = 0.03;
    double order_cpi_abs = 0.01;
    /**
     * Base equality: rel * base + abs. The absolute term absorbs the
     * in-flight window: a measurement reset (or truncation) can leave up
     * to a ROB's worth of uops dispatched on one side of the measuring
     * window but committed on the other, skewing the stage bases by up
     * to rob_size / width (~56 cycles on the largest preset).
     */
    double base_rel = 0.005;
    double base_abs = 96.0;
    /** CPI-vs-cycle-stack consistency: rel * cycles + abs. */
    double cpi_rel = 1e-9;
    double cpi_abs = 1e-6;
};

/**
 * Run every end-of-run invariant on a completed result. Cheap (a few
 * hundred flops); safe to run on every simulation.
 */
ValidationReport validateResult(const sim::SimResult &result,
                                const Tolerances &tol = {});

/**
 * Periodic in-flight checker: call check() at a fixed cycle interval
 * during simulation to catch accounting divergence long before the run
 * finishes (the per-interval counterpart of validateResult()).
 *
 * Checks per-stage cycle conservation against elapsed measured cycles and
 * the finiteness/non-negativity of every accumulating component. Stages
 * accounted in SpeculationMode::kSpecCounters are skipped mid-run (their
 * stacks are only defined after finalize()).
 */
class IntervalValidator
{
  public:
    explicit IntervalValidator(Cycle interval) : interval_(interval) {}

    /** True when a check is due at measured cycle @p elapsed. */
    bool
    due(Cycle elapsed) const
    {
        return interval_ != 0 && elapsed >= next_check_;
    }

    /**
     * The measured cycle of the next due check — drivers feed it into
     * core::OooCore::setCycleHorizon() so skip-ahead lands exactly on
     * check boundaries.
     */
    Cycle nextCheck() const { return next_check_; }

    /** Check @p core now; violations are appended to @p report. */
    void check(const core::OooCore &core, ValidationReport &report);

  private:
    Cycle interval_;
    Cycle next_check_ = 1;  // first check as soon as due() is consulted
};

}  // namespace stackscope::validate

#endif  // STACKSCOPE_VALIDATE_INVARIANTS_HPP
