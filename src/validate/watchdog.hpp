/**
 * @file
 * Run watchdog: deadlock and runaway detection for simulation loops.
 *
 * The historical safety valve was a bare `max_cycles` cap that silently
 * truncated the run. The watchdog upgrades it with *no-retire* detection:
 * if no instruction commits for a configurable window the run is aborted
 * with a diagnostic snapshot (cycle, committed instructions, stall length)
 * instead of spinning — the difference between a production service that
 * sheds a poisoned request and one that wedges a worker forever.
 */

#ifndef STACKSCOPE_VALIDATE_WATCHDOG_HPP
#define STACKSCOPE_VALIDATE_WATCHDOG_HPP

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace stackscope::validate {

/** Watchdog thresholds; 0 disables the respective check. */
struct WatchdogConfig
{
    /** Absolute cycle cap (the historical safety valve; not an error). */
    Cycle max_cycles = 0;
    /** Abort when no instruction retires for this many cycles. */
    Cycle no_retire_cycles = 0;
    /**
     * Hard per-job cycle budget. Unlike max_cycles this is an *error*:
     * crossing it means the job ran away, not that the caller wanted a
     * truncated sample.
     */
    Cycle deadline_cycles = 0;
    /** Hard per-job wall-clock deadline in seconds. */
    double wall_clock_seconds = 0.0;
};

/** State captured when the watchdog fires. */
struct WatchdogSnapshot
{
    /**
     * Why the run was stopped ("max-cycles", "no-retire",
     * "cycle-budget" or "wall-clock").
     */
    std::string reason;
    Cycle cycle = 0;
    std::uint64_t instrs_committed = 0;
    /** Cycles since the last observed commit. */
    Cycle stalled_for = 0;

    /** One-line diagnostic for reports and error messages. */
    std::string describe() const;
};

/**
 * Poll-based watchdog. Call poll() once per simulated cycle; it returns
 * false exactly once — when a threshold is crossed — after which the
 * caller must stop the run and read snapshot().
 */
class Watchdog
{
  public:
    explicit Watchdog(const WatchdogConfig &config) : config_(config)
    {
        if (config_.wall_clock_seconds > 0.0)
            start_ = std::chrono::steady_clock::now();
    }

    /**
     * Observe progress at absolute cycle @p now with cumulative commit
     * count @p instrs_committed. @return true to keep running.
     */
    bool
    poll(Cycle now, std::uint64_t instrs_committed)
    {
        if (instrs_committed != last_instrs_) {
            last_instrs_ = instrs_committed;
            last_progress_ = now;
        }
        if (config_.deadline_cycles != 0 && now >= config_.deadline_cycles)
            return trip("cycle-budget", now, instrs_committed);
        if (config_.max_cycles != 0 && now >= config_.max_cycles)
            return trip("max-cycles", now, instrs_committed);
        if (config_.no_retire_cycles != 0 &&
            now - last_progress_ >= config_.no_retire_cycles)
            return trip("no-retire", now, instrs_committed);
        // The clock syscall is far too expensive per simulated cycle, so
        // the wall deadline is sampled; 8 Ki cycles of slop is harmless
        // for a kill switch measured in seconds.
        if (config_.wall_clock_seconds > 0.0 &&
            (++polls_since_clock_ & 0x1fff) == 0 && wallExpired())
            return trip("wall-clock", now, instrs_committed);
        return true;
    }

    /**
     * The earliest absolute cycle at which any configured threshold could
     * fire given progress observed so far — the skip-ahead ceiling for
     * core::OooCore::setCycleHorizon(). Idle spans never retire, so
     * last_progress_ is stable across a skipped span and the no-retire
     * bound computed here is exact. kNeverCycle when nothing is armed
     * (the wall clock cannot be mapped to a cycle and is deliberately
     * ignored; its 8 Ki-poll sampling slop already absorbs coarser
     * polling).
     */
    Cycle
    cycleHorizon() const
    {
        Cycle h = kNeverCycle;
        if (config_.deadline_cycles != 0)
            h = std::min(h, config_.deadline_cycles);
        if (config_.max_cycles != 0)
            h = std::min(h, config_.max_cycles);
        if (config_.no_retire_cycles != 0)
            h = std::min(h, last_progress_ + config_.no_retire_cycles);
        return h;
    }

    bool tripped() const { return tripped_; }
    /** True when the trip reason is the no-retire deadlock detector. */
    bool
    deadlocked() const
    {
        return tripped_ && snapshot_.reason == "no-retire";
    }
    /** True when a hard deadline (cycle budget or wall clock) fired. */
    bool
    deadlineExceeded() const
    {
        return tripped_ && (snapshot_.reason == "cycle-budget" ||
                            snapshot_.reason == "wall-clock");
    }
    const WatchdogSnapshot &snapshot() const { return snapshot_; }

  private:
    bool trip(const char *reason, Cycle now, std::uint64_t instrs);
    bool wallExpired() const;

    WatchdogConfig config_;
    std::chrono::steady_clock::time_point start_;
    Cycle last_progress_ = 0;
    std::uint64_t last_instrs_ = 0;
    std::uint64_t polls_since_clock_ = 0;
    bool tripped_ = false;
    WatchdogSnapshot snapshot_;
};

}  // namespace stackscope::validate

#endif  // STACKSCOPE_VALIDATE_WATCHDOG_HPP
