/**
 * @file
 * Deterministic fault injection for the accounting pipeline.
 *
 * Validators that never fire are worse than none: they create false
 * confidence. The injector perturbs each layer the validators guard —
 * trace records, core configuration, and accountant counters — in a way
 * that is (a) fully deterministic per seed, so failures reproduce, and
 * (b) guaranteed to violate a specific named invariant, so tests can
 * assert the detection path end to end.
 */

#ifndef STACKSCOPE_VALIDATE_FAULT_INJECTION_HPP
#define STACKSCOPE_VALIDATE_FAULT_INJECTION_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "trace/trace_source.hpp"
#include "validate/invariants.hpp"

namespace stackscope::core {
struct CoreParams;
}
namespace stackscope::sim {
struct SimResult;
}

namespace stackscope::validate {

/** The supported perturbations. */
enum class FaultKind : unsigned
{
    kStackLeak,     ///< drop cycles from one stage's stack (counter fault)
    kStackNegative, ///< drive one component negative (counter fault)
    kStackNan,      ///< poison one component with NaN (counter fault)
    kOrderingFlip,  ///< move frontend mass downstream, sums conserved
    kFlopsLeak,     ///< drop cycles from the FLOPS stack (counter fault)
    kCpiSkew,       ///< scale CPI stacks away from the cycle stacks
    kConfigWidths,  ///< config fault: native per-stage accounting widths
    kTraceHang,     ///< trace fault: the stream stops retiring forever
    kTransientLeak, ///< stack-leak on the first attempt only; retry heals
    kCount,
};

std::string_view toString(FaultKind k);

/** Where in the pipeline a fault kind is applied. */
enum class FaultTarget
{
    kResult,  ///< perturbs accountant counters on the finished result
    kConfig,  ///< perturbs the core configuration before the run
    kTrace,   ///< perturbs the instruction stream
};

FaultTarget targetOf(FaultKind k);

/** The invariant this fault is guaranteed to violate when undetected. */
Invariant violatedBy(FaultKind k);

/** One fault to inject, with the seed driving its random choices. */
struct FaultSpec
{
    FaultKind kind = FaultKind::kStackLeak;
    std::uint64_t seed = 1;
};

/** All fault names, for usage messages and exhaustive tests. */
std::vector<std::string_view> allFaultNames();

/** Parse "KIND" or "KIND:SEED" (e.g. "stack-leak:42"). */
Result<FaultSpec> parseFaultSpec(std::string_view text);

/** Apply a kConfig-target fault to @p params before core construction. */
void applyToConfig(const FaultSpec &fault, core::CoreParams &params);

/**
 * Wrap @p inner with a kTrace-target fault decorator. kTraceHang lets a
 * seed-chosen prefix of the stream through, then yields forever — the
 * no-retire watchdog is the only defence.
 */
std::unique_ptr<trace::TraceSource>
wrapTrace(const FaultSpec &fault, std::unique_ptr<trace::TraceSource> inner);

/**
 * Apply a kResult-target fault to a completed result's counters.
 * @p attempt is the zero-based retry attempt of the enclosing job:
 * kTransientLeak perturbs only attempt 0, modelling a fault that a
 * bounded-retry policy is expected to heal.
 */
void applyToResult(const FaultSpec &fault, sim::SimResult &result,
                   unsigned attempt = 0);

}  // namespace stackscope::validate

#endif  // STACKSCOPE_VALIDATE_FAULT_INJECTION_HPP
