#include "validate/invariants.hpp"

#include <cmath>
#include <cstdio>

#include "core/ooo_core.hpp"
#include "sim/simulation.hpp"
#include "stacks/components.hpp"
#include "stacks/stack.hpp"

namespace stackscope::validate {

using stacks::CpiComponent;
using stacks::CpiStack;
using stacks::FlopsStack;
using stacks::Stage;

std::string_view
toString(ValidationPolicy p)
{
    switch (p) {
      case ValidationPolicy::kOff:
        return "off";
      case ValidationPolicy::kWarn:
        return "warn";
      case ValidationPolicy::kStrict:
        return "strict";
    }
    return "?";
}

std::optional<ValidationPolicy>
parsePolicy(std::string_view text)
{
    if (text == "off")
        return ValidationPolicy::kOff;
    if (text == "warn")
        return ValidationPolicy::kWarn;
    if (text == "strict")
        return ValidationPolicy::kStrict;
    return std::nullopt;
}

std::string_view
toString(Invariant inv)
{
    switch (inv) {
      case Invariant::kStackSum:
        return "stack-sum-conservation";
      case Invariant::kFlopsSum:
        return "flops-slot-conservation";
      case Invariant::kNonNegative:
        return "component-non-negative";
      case Invariant::kFinite:
        return "component-finite";
      case Invariant::kFrontendOrdering:
        return "frontend-ordering";
      case Invariant::kBackendOrdering:
        return "backend-ordering";
      case Invariant::kBaseEquality:
        return "base-equality";
      case Invariant::kCpiConsistency:
        return "cpi-consistency";
      case Invariant::kProgress:
        return "run-progress";
      case Invariant::kStoreOrder:
        return "store-queue-order";
      case Invariant::kCount:
        break;
    }
    return "?";
}

void
ValidationReport::merge(const ValidationReport &other)
{
    checks_run += other.checks_run;
    violations.insert(violations.end(), other.violations.begin(),
                      other.violations.end());
}

bool
ValidationReport::contains(Invariant inv) const
{
    for (const Violation &v : violations) {
        if (v.invariant == inv)
            return true;
    }
    return false;
}

std::string
ValidationReport::summary() const
{
    char head[128];
    std::snprintf(head, sizeof(head),
                  "validation: %llu checks, %zu violation(s)\n",
                  static_cast<unsigned long long>(checks_run),
                  violations.size());
    std::string out = head;
    for (const Violation &v : violations) {
        out += "  [";
        out += toString(v.invariant);
        out += "] ";
        out += v.detail;
        if (v.cycle != 0) {
            char at[48];
            std::snprintf(at, sizeof(at), " (at cycle %llu)",
                          static_cast<unsigned long long>(v.cycle));
            out += at;
        }
        out += "\n";
    }
    return out;
}

StackscopeError
ValidationReport::toError() const
{
    const ErrorCategory cat =
        !violations.empty() &&
                violations.front().invariant == Invariant::kProgress
            ? ErrorCategory::kWatchdog
            : ErrorCategory::kValidation;
    StackscopeError err(cat, summary());
    if (!violations.empty())
        err.withContext("invariant",
                        std::string(toString(violations.front().invariant)));
    return err;
}

namespace {

std::string
fmt(const char *format, double a, double b, double tol)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf), format, a, b, tol);
    return buf;
}

/** Sum of the frontend-attributed components (Icache, bpred, microcode). */
double
frontendMass(const CpiStack &s)
{
    return s[CpiComponent::kIcache] + s[CpiComponent::kBpred] +
           s[CpiComponent::kMicrocode];
}

/** Sum of the backend-attributed components. */
double
backendMass(const CpiStack &s)
{
    return s[CpiComponent::kDcache] + s[CpiComponent::kAluLat] +
           s[CpiComponent::kDepend] + s[CpiComponent::kOther];
}

bool
allFinite(const CpiStack &s)
{
    bool ok = true;
    s.forEach([&](CpiComponent, double v) { ok = ok && std::isfinite(v); });
    return ok;
}

constexpr Stage kStages[] = {Stage::kDispatch, Stage::kIssue, Stage::kCommit};

}  // namespace

ValidationReport
validateResult(const sim::SimResult &r, const Tolerances &tol)
{
    ValidationReport rep;
    const double cycles = static_cast<double>(r.cycles);
    const double instrs = static_cast<double>(r.instrs);

    // Finiteness and non-negativity first: NaNs poison every other
    // comparison, so later checks are only meaningful on finite stacks.
    bool finite = std::isfinite(r.cpi);
    for (Stage s : kStages) {
        const CpiStack &cyc = r.cycle_stacks[static_cast<std::size_t>(s)];
        const CpiStack &cpi = r.cpi_stacks[static_cast<std::size_t>(s)];
        ++rep.checks_run;
        if (!allFinite(cyc) || !allFinite(cpi)) {
            finite = false;
            rep.add(Invariant::kFinite,
                    std::string("non-finite component in the ") +
                        std::string(toString(s)) + " stack");
        }
        cyc.forEach([&](CpiComponent c, double v) {
            ++rep.checks_run;
            if (std::isfinite(v) && v < -(1e-9 * cycles + 1e-9)) {
                rep.add(Invariant::kNonNegative,
                        std::string(toString(s)) + "/" +
                            std::string(componentName(c)) +
                            fmt(" = %.6g cycles (< 0; total %.6g, tol %.3g)",
                                v, cycles, 0.0));
            }
        });
    }
    ++rep.checks_run;
    bool flops_finite = true;
    r.flops_cycles.forEach([&](stacks::FlopsComponent c, double v) {
        ++rep.checks_run;
        if (!std::isfinite(v)) {
            flops_finite = false;
            rep.add(Invariant::kFinite,
                    std::string("non-finite FLOPS component ") +
                        std::string(componentName(c)));
        } else if (v < -(1e-9 * cycles + 1e-9)) {
            rep.add(Invariant::kNonNegative,
                    std::string("flops/") + std::string(componentName(c)) +
                        fmt(" = %.6g cycles (< 0)", v, 0.0, 0.0));
        }
    });
    if (!finite || !flops_finite) {
        rep.add(Invariant::kFinite,
                "skipping algebraic checks: stacks contain non-finite "
                "values");
        return rep;
    }

    // Table II conservation: every stage's cycle stack sums to total
    // cycles — each accounted cycle is attributed exactly once.
    const double sum_tol = tol.sum_rel * cycles + tol.sum_abs;
    for (Stage s : kStages) {
        const double sum =
            r.cycle_stacks[static_cast<std::size_t>(s)].sum();
        ++rep.checks_run;
        if (std::abs(sum - cycles) > sum_tol) {
            rep.add(Invariant::kStackSum,
                    std::string(toString(s)) +
                        fmt(" stack sums to %.6g cycles, run took %.6g "
                            "(tol %.3g)",
                            sum, cycles, sum_tol));
        }
    }

    // Equation 1 conservation: the FLOPS stack decomposes every cycle's
    // worth of peak issue slots.
    ++rep.checks_run;
    const double fsum = r.flops_cycles.sum();
    if (std::abs(fsum - cycles) > sum_tol) {
        rep.add(Invariant::kFlopsSum,
                fmt("FLOPS stack sums to %.6g cycles, run took %.6g "
                    "(tol %.3g)",
                    fsum, cycles, sum_tol));
    }

    // §III ordering: frontend mass can only shrink toward commit (a
    // fetch bubble may be hidden downstream but never created), backend
    // mass can only grow.
    const double order_tol =
        tol.order_rel * cycles + tol.order_cpi_abs * instrs + tol.sum_abs;
    const auto stack = [&](Stage s) -> const CpiStack & {
        return r.cycle_stacks[static_cast<std::size_t>(s)];
    };
    const struct
    {
        Stage earlier, later;
    } pairs[] = {{Stage::kDispatch, Stage::kIssue},
                 {Stage::kIssue, Stage::kCommit}};
    for (const auto &p : pairs) {
        ++rep.checks_run;
        const double fe_e = frontendMass(stack(p.earlier));
        const double fe_l = frontendMass(stack(p.later));
        if (fe_e < fe_l - order_tol) {
            rep.add(Invariant::kFrontendOrdering,
                    std::string("frontend mass ") +
                        std::string(toString(p.earlier)) +
                        fmt(" = %.6g < %.6g = ", fe_e, fe_l, 0.0) +
                        std::string(toString(p.later)) +
                        fmt(" (tol %.3g)", order_tol, 0.0, 0.0));
        }
        ++rep.checks_run;
        const double be_e = backendMass(stack(p.earlier));
        const double be_l = backendMass(stack(p.later));
        if (be_e > be_l + order_tol) {
            rep.add(Invariant::kBackendOrdering,
                    std::string("backend mass ") +
                        std::string(toString(p.earlier)) +
                        fmt(" = %.6g > %.6g = ", be_e, be_l, 0.0) +
                        std::string(toString(p.later)) +
                        fmt(" (tol %.3g)", order_tol, 0.0, 0.0));
        }
    }

    // §III-A: width normalization makes the base component equal across
    // stages (the property the accounting width W = min over stages
    // exists to provide).
    const double base_c = stack(Stage::kCommit)[CpiComponent::kBase];
    const double base_tol = tol.base_rel * base_c + tol.base_abs;
    for (Stage s : {Stage::kDispatch, Stage::kIssue}) {
        ++rep.checks_run;
        const double base_s = stack(s)[CpiComponent::kBase];
        if (std::abs(base_s - base_c) > base_tol) {
            rep.add(Invariant::kBaseEquality,
                    std::string("base(") + std::string(toString(s)) +
                        fmt(") = %.6g vs base(commit) = %.6g (tol %.3g)",
                            base_s, base_c, base_tol));
        }
    }

    // The CPI stacks must be the cycle stacks divided by committed
    // instructions, and the headline CPI the same ratio.
    if (r.instrs > 0) {
        const double cpi_tol = tol.cpi_rel * cycles + tol.cpi_abs;
        for (Stage s : kStages) {
            const CpiStack &cyc = stack(s);
            const CpiStack &cpi = r.cpi_stacks[static_cast<std::size_t>(s)];
            double max_err = 0.0;
            cyc.forEach([&](CpiComponent c, double v) {
                max_err =
                    std::max(max_err, std::abs(cpi[c] * instrs - v));
            });
            ++rep.checks_run;
            if (max_err > cpi_tol) {
                rep.add(Invariant::kCpiConsistency,
                        std::string(toString(s)) +
                            fmt(" CPI stack deviates from cycle stack / "
                                "instructions by %.6g cycles (tol %.3g)",
                                max_err, cpi_tol, 0.0));
            }
        }
        ++rep.checks_run;
        if (std::abs(r.cpi * instrs - cycles) > cpi_tol) {
            rep.add(Invariant::kCpiConsistency,
                    fmt("CPI %.6g x %.6g instructions != cycles", r.cpi,
                        instrs, 0.0) +
                        fmt(" %.6g", cycles, 0.0, 0.0));
        }
    }

    return rep;
}

void
IntervalValidator::check(const core::OooCore &core, ValidationReport &report)
{
    const Cycle elapsed = core.cycles();
    next_check_ = elapsed + interval_;
    if (elapsed == 0)
        return;

    const double cycles = static_cast<double>(elapsed);
    // Mid-run the attribution must already be exact: every tick
    // distributes exactly one cycle over the components.
    const double tol = 1e-6 * cycles + 1.0;
    for (Stage s : kStages) {
        const stacks::CpiAccountant &acct = core.accountant(s);
        // Spec-counter stacks hold uncommitted mass until finalize();
        // their conservation is only defined at end of run.
        if (acct.speculationMode() ==
            stacks::SpeculationMode::kSpecCounters)
            continue;
        ++report.checks_run;
        const CpiStack &cyc = acct.cycles();
        if (!allFinite(cyc)) {
            report.add(Invariant::kFinite,
                       std::string("non-finite component in the ") +
                           std::string(toString(s)) + " stack",
                       elapsed);
            continue;
        }
        const double sum = cyc.sum();
        if (std::abs(sum - cycles) > tol) {
            report.add(Invariant::kStackSum,
                       std::string(toString(s)) +
                           fmt(" stack sums to %.6g after %.6g measured "
                               "cycles (tol %.3g)",
                               sum, cycles, tol),
                       elapsed);
        }
        bool negative = false;
        cyc.forEach([&](CpiComponent, double v) {
            negative = negative || v < -tol;
        });
        ++report.checks_run;
        if (negative) {
            report.add(Invariant::kNonNegative,
                       std::string("negative component in the ") +
                           std::string(toString(s)) + " stack",
                       elapsed);
        }
    }

    // Microarchitectural invariant the load-alias early-break depends on:
    // the pending-store queue must stay strictly seq-sorted through every
    // dispatch/commit/squash interleaving.
    ++report.checks_run;
    if (!core.storeQueueSorted()) {
        report.add(Invariant::kStoreOrder,
                   "pending-store queue is not strictly seq-sorted",
                   elapsed);
    }

    ++report.checks_run;
    const double fsum = core.flopsAccountant().cycles().sum();
    if (!std::isfinite(fsum) || std::abs(fsum - cycles) > tol) {
        report.add(Invariant::kFlopsSum,
                   fmt("FLOPS stack sums to %.6g after %.6g measured "
                       "cycles (tol %.3g)",
                       fsum, cycles, tol),
                   elapsed);
    }
}

}  // namespace stackscope::validate
