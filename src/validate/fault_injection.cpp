#include "validate/fault_injection.hpp"

#include <charconv>
#include <limits>

#include "common/rng.hpp"
#include "core/ooo_core.hpp"
#include "sim/simulation.hpp"

namespace stackscope::validate {

using stacks::CpiComponent;
using stacks::CpiStack;
using stacks::FlopsComponent;
using stacks::Stage;

std::string_view
toString(FaultKind k)
{
    switch (k) {
      case FaultKind::kStackLeak:
        return "stack-leak";
      case FaultKind::kStackNegative:
        return "stack-negative";
      case FaultKind::kStackNan:
        return "stack-nan";
      case FaultKind::kOrderingFlip:
        return "ordering-flip";
      case FaultKind::kFlopsLeak:
        return "flops-leak";
      case FaultKind::kCpiSkew:
        return "cpi-skew";
      case FaultKind::kConfigWidths:
        return "config-widths";
      case FaultKind::kTraceHang:
        return "trace-hang";
      case FaultKind::kTransientLeak:
        return "transient-leak";
      case FaultKind::kCount:
        break;
    }
    return "?";
}

FaultTarget
targetOf(FaultKind k)
{
    switch (k) {
      case FaultKind::kConfigWidths:
        return FaultTarget::kConfig;
      case FaultKind::kTraceHang:
        return FaultTarget::kTrace;
      default:
        return FaultTarget::kResult;
    }
}

Invariant
violatedBy(FaultKind k)
{
    switch (k) {
      case FaultKind::kStackLeak:
        return Invariant::kStackSum;
      case FaultKind::kStackNegative:
        return Invariant::kNonNegative;
      case FaultKind::kStackNan:
        return Invariant::kFinite;
      case FaultKind::kOrderingFlip:
        return Invariant::kFrontendOrdering;
      case FaultKind::kFlopsLeak:
        return Invariant::kFlopsSum;
      case FaultKind::kCpiSkew:
        return Invariant::kCpiConsistency;
      case FaultKind::kConfigWidths:
        return Invariant::kBaseEquality;
      case FaultKind::kTraceHang:
        return Invariant::kProgress;
      case FaultKind::kTransientLeak:
        return Invariant::kStackSum;
      case FaultKind::kCount:
        break;
    }
    return Invariant::kCount;
}

std::vector<std::string_view>
allFaultNames()
{
    std::vector<std::string_view> names;
    for (unsigned k = 0; k < static_cast<unsigned>(FaultKind::kCount); ++k)
        names.push_back(toString(static_cast<FaultKind>(k)));
    return names;
}

Result<FaultSpec>
parseFaultSpec(std::string_view text)
{
    FaultSpec spec;
    std::string_view name = text;
    const std::size_t colon = text.find(':');
    if (colon != std::string_view::npos) {
        name = text.substr(0, colon);
        const std::string_view seed_text = text.substr(colon + 1);
        const auto [end, ec] =
            std::from_chars(seed_text.data(),
                            seed_text.data() + seed_text.size(), spec.seed);
        if (ec != std::errc{} || end != seed_text.data() + seed_text.size())
            return StackscopeError(ErrorCategory::kUsage,
                                   "bad fault seed '" +
                                       std::string(seed_text) +
                                       "' (expected KIND[:SEED])");
    }
    for (unsigned k = 0; k < static_cast<unsigned>(FaultKind::kCount); ++k) {
        if (name == toString(static_cast<FaultKind>(k))) {
            spec.kind = static_cast<FaultKind>(k);
            return spec;
        }
    }
    std::string valid;
    for (std::string_view n : allFaultNames()) {
        if (!valid.empty())
            valid += ", ";
        valid += n;
    }
    return StackscopeError(ErrorCategory::kUsage,
                           "unknown fault kind '" + std::string(name) +
                               "' (valid: " + valid + ")");
}

void
applyToConfig(const FaultSpec &fault, core::CoreParams &params)
{
    switch (fault.kind) {
      case FaultKind::kConfigWidths:
        // Account each stage with its native width instead of the §III-A
        // normalized minimum: the base components drift apart across
        // stages, which base-equality validation must catch.
        params.accounting_native_widths = true;
        break;
      default:
        break;
    }
}

namespace {

/**
 * Passes a seed-chosen prefix through, then degenerates into an endless
 * stream of thread yields: the core never retires another instruction
 * and only the no-retire watchdog can end the run.
 */
class HangingTraceSource : public trace::TraceSource
{
  public:
    HangingTraceSource(std::unique_ptr<trace::TraceSource> inner,
                       std::uint64_t seed)
        : inner_(std::move(inner)), seed_(seed),
          hang_after_(Rng(seed).range(256, 4096))
    {
    }

    bool
    next(trace::DynInstr &out) override
    {
        if (emitted_ < hang_after_ && inner_->next(out)) {
            ++emitted_;
            return true;
        }
        // One enormous yield per record: the thread stops retiring for
        // ~1G cycles at a time, which only the no-retire watchdog can
        // distinguish from forward progress.
        out = trace::DynInstr{};
        out.cls = trace::InstrClass::kYield;
        out.yield_cycles = 1u << 30;
        return true;
    }

    void
    reset() override
    {
        inner_->reset();
        emitted_ = 0;
    }

    std::unique_ptr<trace::TraceSource>
    clone() const override
    {
        return std::make_unique<HangingTraceSource>(inner_->clone(), seed_);
    }

  private:
    std::unique_ptr<trace::TraceSource> inner_;
    std::uint64_t seed_;
    std::uint64_t hang_after_;
    std::uint64_t emitted_ = 0;
};

}  // namespace

std::unique_ptr<trace::TraceSource>
wrapTrace(const FaultSpec &fault, std::unique_ptr<trace::TraceSource> inner)
{
    switch (fault.kind) {
      case FaultKind::kTraceHang:
        return std::make_unique<HangingTraceSource>(std::move(inner),
                                                    fault.seed);
      default:
        return inner;
    }
}

namespace {

constexpr Stage kStages[] = {Stage::kDispatch, Stage::kIssue,
                             Stage::kCommit};

CpiStack &
cycleStack(sim::SimResult &r, Stage s)
{
    return r.cycle_stacks[static_cast<std::size_t>(s)];
}

/** Frontend mass of one stack (mirrors the validator's definition). */
double
frontendMass(const CpiStack &s)
{
    return s[CpiComponent::kIcache] + s[CpiComponent::kBpred] +
           s[CpiComponent::kMicrocode];
}

}  // namespace

void
applyToResult(const FaultSpec &fault, sim::SimResult &r, unsigned attempt)
{
    Rng rng(fault.seed ^ 0x0fa017fa017fa017ULL);
    const double cycles = static_cast<double>(r.cycles);

    switch (fault.kind) {
      case FaultKind::kTransientLeak:
        if (attempt > 0)
            break;
        [[fallthrough]];
      case FaultKind::kStackLeak: {
        // Silently lose 5–15% of one stage's cycles, the classic
        // "forgot to account a stall condition" bug.
        Stage s = kStages[rng.below(3)];
        const double leak = (0.05 + 0.10 * rng.uniform()) * cycles + 4.0;
        cycleStack(r, s)[CpiComponent::kBase] -= leak;
        if (r.instrs > 0) {
            r.cpi_stacks[static_cast<std::size_t>(s)][CpiComponent::kBase] -=
                leak / static_cast<double>(r.instrs);
        }
        break;
      }
      case FaultKind::kStackNegative: {
        Stage s = kStages[rng.below(3)];
        CpiStack &stack = cycleStack(r, s);
        const double v = stack[CpiComponent::kDcache];
        stack[CpiComponent::kDcache] = -(v + 0.01 * cycles + 4.0);
        break;
      }
      case FaultKind::kStackNan: {
        Stage s = kStages[rng.below(3)];
        cycleStack(r, s)[CpiComponent::kOther] =
            std::numeric_limits<double>::quiet_NaN();
        break;
      }
      case FaultKind::kOrderingFlip: {
        // Teleport frontend mass from dispatch to commit while keeping
        // both stack sums intact: conservation alone cannot notice, the
        // §III ordering law must.
        CpiStack &dispatch = cycleStack(r, Stage::kDispatch);
        CpiStack &commit = cycleStack(r, Stage::kCommit);
        const double delta = frontendMass(dispatch) -
                             frontendMass(commit) + 0.2 * cycles + 4.0;
        commit[CpiComponent::kIcache] += delta;
        commit[CpiComponent::kDepend] -= delta;
        break;
      }
      case FaultKind::kFlopsLeak: {
        const double leak = (0.05 + 0.10 * rng.uniform()) * cycles + 4.0;
        r.flops_cycles[FlopsComponent::kFrontend] -= leak;
        break;
      }
      case FaultKind::kCpiSkew: {
        // The CPI rendering diverges from the underlying cycle counts —
        // e.g. a stale instruction count used for the division.
        const double skew = 1.10 + 0.20 * rng.uniform();
        for (Stage s : kStages) {
            auto &cpi = r.cpi_stacks[static_cast<std::size_t>(s)];
            cpi = cpi.scaled(skew);
        }
        break;
      }
      case FaultKind::kConfigWidths:
      case FaultKind::kTraceHang:
      case FaultKind::kCount:
        break;
    }
}

}  // namespace stackscope::validate
