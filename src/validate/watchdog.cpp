#include "validate/watchdog.hpp"

#include <cstdio>

namespace stackscope::validate {

std::string
WatchdogSnapshot::describe() const
{
    char buf[192];
    std::snprintf(
        buf, sizeof(buf),
        "watchdog %s: aborted at cycle %llu after %llu committed "
        "instructions (no commit for %llu cycles)",
        reason.c_str(), static_cast<unsigned long long>(cycle),
        static_cast<unsigned long long>(instrs_committed),
        static_cast<unsigned long long>(stalled_for));
    return buf;
}

bool
Watchdog::wallExpired() const
{
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    return elapsed.count() >= config_.wall_clock_seconds;
}

bool
Watchdog::trip(const char *reason, Cycle now, std::uint64_t instrs)
{
    tripped_ = true;
    snapshot_.reason = reason;
    snapshot_.cycle = now;
    snapshot_.instrs_committed = instrs;
    snapshot_.stalled_for = now - last_progress_;
    return false;
}

}  // namespace stackscope::validate
